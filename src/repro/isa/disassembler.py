"""Disassembler: render instructions back to assembly text.

Primarily a debugging and testing aid; the round trip
``assemble(disassemble(code))`` reproduces the original bytes for any code
the library emits (branch/jump operands are rendered numerically).
"""

from __future__ import annotations

from repro.isa.decoding import decode
from repro.isa.instruction import Instruction
from repro.isa.registers import register_name


def disassemble_word(word: int, address: int | None = None) -> str:
    """Disassemble one 32-bit word; ``address`` resolves branch targets."""
    return disassemble(decode(word), address)


def disassemble(instruction: Instruction, address: int | None = None) -> str:
    """Render ``instruction`` as assembly text.

    If ``address`` (the instruction's own address) is given, PC-relative
    branch targets are shown as absolute addresses; otherwise the raw
    word offset is shown.
    """
    spec = instruction.spec
    signature = spec.operands
    gpr = register_name
    fpr = lambda n: register_name(n, fp=True)  # noqa: E731

    if instruction.mnemonic == "sll" and instruction.rd == 0 and instruction.rt == 0:
        return "nop"

    if signature == "":
        return spec.mnemonic
    if signature == "rd,rs,rt":
        operands = f"{gpr(instruction.rd)}, {gpr(instruction.rs)}, {gpr(instruction.rt)}"
    elif signature == "rd,rt,sha":
        operands = f"{gpr(instruction.rd)}, {gpr(instruction.rt)}, {instruction.shamt}"
    elif signature == "rd,rt,rs":
        operands = f"{gpr(instruction.rd)}, {gpr(instruction.rt)}, {gpr(instruction.rs)}"
    elif signature == "rs":
        operands = gpr(instruction.rs)
    elif signature == "rd,rs":
        operands = f"{gpr(instruction.rd)}, {gpr(instruction.rs)}"
    elif signature == "rd":
        operands = gpr(instruction.rd)
    elif signature == "rs,rt":
        operands = f"{gpr(instruction.rs)}, {gpr(instruction.rt)}"
    elif signature in ("rt,rs,imm", "rt,rs,uimm"):
        imm = instruction.imm_unsigned if signature.endswith("uimm") else instruction.imm_signed
        operands = f"{gpr(instruction.rt)}, {gpr(instruction.rs)}, {imm}"
    elif signature == "rt,uimm":
        operands = f"{gpr(instruction.rt)}, {instruction.imm_unsigned:#x}"
    elif signature == "rt,off(rs)":
        operands = f"{gpr(instruction.rt)}, {instruction.imm_signed}({gpr(instruction.rs)})"
    elif signature == "ft,off(rs)":
        operands = f"{fpr(instruction.rt)}, {instruction.imm_signed}({gpr(instruction.rs)})"
    elif signature == "rs,rt,rel":
        operands = (
            f"{gpr(instruction.rs)}, {gpr(instruction.rt)}, "
            f"{_branch_target(instruction, address)}"
        )
    elif signature == "rs,rel":
        operands = f"{gpr(instruction.rs)}, {_branch_target(instruction, address)}"
    elif signature == "rel":
        operands = _branch_target(instruction, address)
    elif signature == "target":
        operands = f"{instruction.target << 2:#x}"
    elif signature == "fd,fs,ft":
        operands = f"{fpr(instruction.shamt)}, {fpr(instruction.rd)}, {fpr(instruction.rt)}"
    elif signature == "fd,fs":
        operands = f"{fpr(instruction.shamt)}, {fpr(instruction.rd)}"
    elif signature == "fs,ft":
        operands = f"{fpr(instruction.rd)}, {fpr(instruction.rt)}"
    elif signature == "rt,fs":
        operands = f"{gpr(instruction.rt)}, {fpr(instruction.rd)}"
    else:  # pragma: no cover - exhaustive over SPECS signatures
        raise ValueError(f"unhandled signature {signature!r}")
    return f"{spec.mnemonic} {operands}"


def _branch_target(instruction: Instruction, address: int | None) -> str:
    if address is None:
        return str(instruction.imm_signed)
    return f"{address + 4 + (instruction.imm_signed << 2):#x}"


def disassemble_program(code: bytes, base: int = 0) -> list[str]:
    """Disassemble a contiguous text segment into one line per word."""
    lines = []
    for offset in range(0, len(code), 4):
        word = int.from_bytes(code[offset : offset + 4], "big")
        lines.append(f"{base + offset:06x}:  {disassemble_word(word, base + offset)}")
    return lines
