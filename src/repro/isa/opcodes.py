"""Instruction specification tables for the MIPS-I subset used by the CCRP.

Every instruction the library can assemble, encode, decode, execute, or
generate is described here by an :class:`InstructionSpec`.  The tables cover
the MIPS-I integer instruction set plus the coprocessor-1 (floating point)
operations that dominate the paper's FORTRAN workloads (NASA7, tomcatv,
fpppp, …).

Field layout reference (MIPS R2000, [Kane92]):

* R-type:  ``op(6) rs(5) rt(5) rd(5) shamt(5) funct(6)``
* I-type:  ``op(6) rs(5) rt(5) imm(16)``
* J-type:  ``op(6) target(26)``
* COP1:    ``op(6) fmt(5) ft(5) fs(5) fd(5) funct(6)`` — encoded through the
  R-type fields (``rs=fmt, rt=ft, rd=fs, shamt=fd``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class InstructionFormat(enum.Enum):
    """Binary layout family of an instruction."""

    R = "R"
    I = "I"  # noqa: E741 - standard MIPS format name
    J = "J"
    REGIMM = "REGIMM"  # opcode 1; rt field selects the operation
    COP1 = "COP1"  # opcode 0x11; rs field holds fmt or a selector


class Category(enum.Enum):
    """Semantic family, used by the stall model and the code generator."""

    ALU = "alu"
    SHIFT = "shift"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    CALL = "call"
    JUMP_REG = "jump_reg"
    MULTDIV = "multdiv"
    HILO = "hilo"
    FP_ARITH = "fp_arith"
    FP_COMPARE = "fp_compare"
    FP_CONVERT = "fp_convert"
    FP_MOVE = "fp_move"
    FP_LOAD = "fp_load"
    FP_STORE = "fp_store"
    FP_BRANCH = "fp_branch"
    SYSTEM = "system"


# COP1 ``fmt`` field values.
FMT_SINGLE = 0x10
FMT_DOUBLE = 0x11
FMT_WORD = 0x14

# COP1 ``rs``-field selectors for non-arithmetic operations.
COP1_MFC1 = 0x00
COP1_MTC1 = 0x04
COP1_BC = 0x08


@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one machine instruction.

    Attributes:
        mnemonic: Assembly mnemonic, e.g. ``"addu"`` or ``"add.d"``.
        format: Binary layout family.
        opcode: Value of the 6-bit major opcode field.
        funct: Value of the 6-bit function field for R/COP1 formats, else
            ``None``.
        operands: Signature key describing assembler operand syntax; one of
            the keys accepted by :mod:`repro.isa.assembler`.
        category: Semantic family for stall modelling and code generation.
        fmt: COP1 ``fmt`` field (``FMT_SINGLE``/``FMT_DOUBLE``/``FMT_WORD``)
            for floating-point arithmetic, else ``None``.
        selector: Fixed value of the ``rt`` field for REGIMM and COP1 branch
            instructions, or of the ``rs`` field for MFC1/MTC1/BC groups.
    """

    mnemonic: str
    format: InstructionFormat
    opcode: int
    funct: int | None
    operands: str
    category: Category
    fmt: int | None = None
    selector: int | None = None

    @property
    def is_fp(self) -> bool:
        """True for any coprocessor-1 instruction (including lwc1/swc1)."""
        return self.format is InstructionFormat.COP1 or self.mnemonic in (
            "lwc1",
            "swc1",
        )

    @property
    def is_control_transfer(self) -> bool:
        """True if the instruction may redirect the program counter."""
        return self.category in (
            Category.BRANCH,
            Category.JUMP,
            Category.CALL,
            Category.JUMP_REG,
            Category.FP_BRANCH,
        )


def _r(mnemonic: str, funct: int, operands: str, category: Category) -> InstructionSpec:
    return InstructionSpec(mnemonic, InstructionFormat.R, 0, funct, operands, category)


def _i(mnemonic: str, opcode: int, operands: str, category: Category) -> InstructionSpec:
    return InstructionSpec(mnemonic, InstructionFormat.I, opcode, None, operands, category)


def _fp3(mnemonic: str, funct: int, fmt: int) -> InstructionSpec:
    return InstructionSpec(
        mnemonic, InstructionFormat.COP1, 0x11, funct, "fd,fs,ft", Category.FP_ARITH, fmt=fmt
    )


def _fp2(mnemonic: str, funct: int, fmt: int, category: Category) -> InstructionSpec:
    return InstructionSpec(
        mnemonic, InstructionFormat.COP1, 0x11, funct, "fd,fs", category, fmt=fmt
    )


def _fpcmp(mnemonic: str, funct: int, fmt: int) -> InstructionSpec:
    return InstructionSpec(
        mnemonic, InstructionFormat.COP1, 0x11, funct, "fs,ft", Category.FP_COMPARE, fmt=fmt
    )


#: All instruction specifications, in mnemonic order within each group.
SPECS: tuple[InstructionSpec, ...] = (
    # --- R-type integer arithmetic / logic -------------------------------
    _r("add", 0x20, "rd,rs,rt", Category.ALU),
    _r("addu", 0x21, "rd,rs,rt", Category.ALU),
    _r("sub", 0x22, "rd,rs,rt", Category.ALU),
    _r("subu", 0x23, "rd,rs,rt", Category.ALU),
    _r("and", 0x24, "rd,rs,rt", Category.ALU),
    _r("or", 0x25, "rd,rs,rt", Category.ALU),
    _r("xor", 0x26, "rd,rs,rt", Category.ALU),
    _r("nor", 0x27, "rd,rs,rt", Category.ALU),
    _r("slt", 0x2A, "rd,rs,rt", Category.ALU),
    _r("sltu", 0x2B, "rd,rs,rt", Category.ALU),
    # --- shifts -----------------------------------------------------------
    _r("sll", 0x00, "rd,rt,sha", Category.SHIFT),
    _r("srl", 0x02, "rd,rt,sha", Category.SHIFT),
    _r("sra", 0x03, "rd,rt,sha", Category.SHIFT),
    _r("sllv", 0x04, "rd,rt,rs", Category.SHIFT),
    _r("srlv", 0x06, "rd,rt,rs", Category.SHIFT),
    _r("srav", 0x07, "rd,rt,rs", Category.SHIFT),
    # --- jumps through registers ------------------------------------------
    _r("jr", 0x08, "rs", Category.JUMP_REG),
    _r("jalr", 0x09, "rd,rs", Category.CALL),
    # --- HI/LO ------------------------------------------------------------
    _r("mfhi", 0x10, "rd", Category.HILO),
    _r("mthi", 0x11, "rs", Category.HILO),
    _r("mflo", 0x12, "rd", Category.HILO),
    _r("mtlo", 0x13, "rs", Category.HILO),
    _r("mult", 0x18, "rs,rt", Category.MULTDIV),
    _r("multu", 0x19, "rs,rt", Category.MULTDIV),
    _r("div", 0x1A, "rs,rt", Category.MULTDIV),
    _r("divu", 0x1B, "rs,rt", Category.MULTDIV),
    # --- system -----------------------------------------------------------
    _r("syscall", 0x0C, "", Category.SYSTEM),
    _r("break", 0x0D, "", Category.SYSTEM),
    # --- I-type arithmetic / logic -----------------------------------------
    _i("addi", 0x08, "rt,rs,imm", Category.ALU),
    _i("addiu", 0x09, "rt,rs,imm", Category.ALU),
    _i("slti", 0x0A, "rt,rs,imm", Category.ALU),
    _i("sltiu", 0x0B, "rt,rs,imm", Category.ALU),
    _i("andi", 0x0C, "rt,rs,uimm", Category.ALU),
    _i("ori", 0x0D, "rt,rs,uimm", Category.ALU),
    _i("xori", 0x0E, "rt,rs,uimm", Category.ALU),
    _i("lui", 0x0F, "rt,uimm", Category.ALU),
    # --- loads / stores ------------------------------------------------------
    _i("lb", 0x20, "rt,off(rs)", Category.LOAD),
    _i("lh", 0x21, "rt,off(rs)", Category.LOAD),
    _i("lwl", 0x22, "rt,off(rs)", Category.LOAD),
    _i("lw", 0x23, "rt,off(rs)", Category.LOAD),
    _i("lbu", 0x24, "rt,off(rs)", Category.LOAD),
    _i("lhu", 0x25, "rt,off(rs)", Category.LOAD),
    _i("lwr", 0x26, "rt,off(rs)", Category.LOAD),
    _i("sb", 0x28, "rt,off(rs)", Category.STORE),
    _i("sh", 0x29, "rt,off(rs)", Category.STORE),
    _i("swl", 0x2A, "rt,off(rs)", Category.STORE),
    _i("sw", 0x2B, "rt,off(rs)", Category.STORE),
    _i("swr", 0x2E, "rt,off(rs)", Category.STORE),
    # --- branches -------------------------------------------------------------
    _i("beq", 0x04, "rs,rt,rel", Category.BRANCH),
    _i("bne", 0x05, "rs,rt,rel", Category.BRANCH),
    _i("blez", 0x06, "rs,rel", Category.BRANCH),
    _i("bgtz", 0x07, "rs,rel", Category.BRANCH),
    InstructionSpec(
        "bltz", InstructionFormat.REGIMM, 0x01, None, "rs,rel", Category.BRANCH, selector=0x00
    ),
    InstructionSpec(
        "bgez", InstructionFormat.REGIMM, 0x01, None, "rs,rel", Category.BRANCH, selector=0x01
    ),
    InstructionSpec(
        "bltzal", InstructionFormat.REGIMM, 0x01, None, "rs,rel", Category.CALL, selector=0x10
    ),
    InstructionSpec(
        "bgezal", InstructionFormat.REGIMM, 0x01, None, "rs,rel", Category.CALL, selector=0x11
    ),
    # --- absolute jumps -----------------------------------------------------
    InstructionSpec("j", InstructionFormat.J, 0x02, None, "target", Category.JUMP),
    InstructionSpec("jal", InstructionFormat.J, 0x03, None, "target", Category.CALL),
    # --- FP loads/stores (I-format with FP target register) -------------------
    _i("lwc1", 0x31, "ft,off(rs)", Category.FP_LOAD),
    _i("swc1", 0x39, "ft,off(rs)", Category.FP_STORE),
    # --- FP register moves -----------------------------------------------------
    InstructionSpec(
        "mfc1", InstructionFormat.COP1, 0x11, 0x00, "rt,fs", Category.FP_MOVE, selector=COP1_MFC1
    ),
    InstructionSpec(
        "mtc1", InstructionFormat.COP1, 0x11, 0x00, "rt,fs", Category.FP_MOVE, selector=COP1_MTC1
    ),
    # --- FP branches ------------------------------------------------------------
    InstructionSpec(
        "bc1f", InstructionFormat.COP1, 0x11, None, "rel", Category.FP_BRANCH, selector=COP1_BC
    ),
    InstructionSpec(
        "bc1t", InstructionFormat.COP1, 0x11, None, "rel", Category.FP_BRANCH, selector=COP1_BC
    ),
    # --- FP arithmetic ------------------------------------------------------------
    _fp3("add.s", 0x00, FMT_SINGLE),
    _fp3("add.d", 0x00, FMT_DOUBLE),
    _fp3("sub.s", 0x01, FMT_SINGLE),
    _fp3("sub.d", 0x01, FMT_DOUBLE),
    _fp3("mul.s", 0x02, FMT_SINGLE),
    _fp3("mul.d", 0x02, FMT_DOUBLE),
    _fp3("div.s", 0x03, FMT_SINGLE),
    _fp3("div.d", 0x03, FMT_DOUBLE),
    _fp2("abs.s", 0x05, FMT_SINGLE, Category.FP_ARITH),
    _fp2("abs.d", 0x05, FMT_DOUBLE, Category.FP_ARITH),
    _fp2("mov.s", 0x06, FMT_SINGLE, Category.FP_MOVE),
    _fp2("mov.d", 0x06, FMT_DOUBLE, Category.FP_MOVE),
    _fp2("neg.s", 0x07, FMT_SINGLE, Category.FP_ARITH),
    _fp2("neg.d", 0x07, FMT_DOUBLE, Category.FP_ARITH),
    # --- FP conversions ----------------------------------------------------------
    _fp2("cvt.s.d", 0x20, FMT_DOUBLE, Category.FP_CONVERT),
    _fp2("cvt.s.w", 0x20, FMT_WORD, Category.FP_CONVERT),
    _fp2("cvt.d.s", 0x21, FMT_SINGLE, Category.FP_CONVERT),
    _fp2("cvt.d.w", 0x21, FMT_WORD, Category.FP_CONVERT),
    _fp2("cvt.w.s", 0x24, FMT_SINGLE, Category.FP_CONVERT),
    _fp2("cvt.w.d", 0x24, FMT_DOUBLE, Category.FP_CONVERT),
    # --- FP comparisons ------------------------------------------------------------
    _fpcmp("c.eq.s", 0x32, FMT_SINGLE),
    _fpcmp("c.eq.d", 0x32, FMT_DOUBLE),
    _fpcmp("c.lt.s", 0x3C, FMT_SINGLE),
    _fpcmp("c.lt.d", 0x3C, FMT_DOUBLE),
    _fpcmp("c.le.s", 0x3E, FMT_SINGLE),
    _fpcmp("c.le.d", 0x3E, FMT_DOUBLE),
)

#: Mnemonic -> spec lookup used by the assembler and generator.
SPECS_BY_MNEMONIC: dict[str, InstructionSpec] = {spec.mnemonic: spec for spec in SPECS}

# ---------------------------------------------------------------------------
# Decode-side lookup tables.
# ---------------------------------------------------------------------------

#: R-type lookup: funct -> spec (opcode 0).
R_BY_FUNCT: dict[int, InstructionSpec] = {
    spec.funct: spec for spec in SPECS if spec.format is InstructionFormat.R
}

#: I/J-type lookup: opcode -> spec (excluding opcodes 0, 1, 0x11).
I_J_BY_OPCODE: dict[int, InstructionSpec] = {
    spec.opcode: spec
    for spec in SPECS
    if spec.format in (InstructionFormat.I, InstructionFormat.J)
}

#: REGIMM lookup: rt selector -> spec (opcode 1).
REGIMM_BY_SELECTOR: dict[int, InstructionSpec] = {
    spec.selector: spec for spec in SPECS if spec.format is InstructionFormat.REGIMM
}

#: COP1 arithmetic lookup: (fmt, funct) -> spec.
COP1_BY_FMT_FUNCT: dict[tuple[int, int], InstructionSpec] = {
    (spec.fmt, spec.funct): spec
    for spec in SPECS
    if spec.format is InstructionFormat.COP1 and spec.fmt is not None
}
