"""MIPS-I instruction-set substrate.

The CCRP paper builds on the MIPS R2000 architecture [Kane92].  This package
provides everything needed to create, encode, decode, assemble, and
disassemble MIPS-I machine code from scratch:

* :mod:`repro.isa.registers` — register numbering and ABI names.
* :mod:`repro.isa.opcodes` — the instruction specification tables.
* :mod:`repro.isa.instruction` — the :class:`Instruction` value object.
* :mod:`repro.isa.encoding` / :mod:`repro.isa.decoding` — conversion
  between :class:`Instruction` and 32-bit binary words.
* :mod:`repro.isa.assembler` — a two-pass assembler with labels and data
  directives.
* :mod:`repro.isa.disassembler` — the inverse, for debugging and tests.
"""

from repro.isa.assembler import Assembler, AssembledProgram
from repro.isa.decoding import decode
from repro.isa.disassembler import disassemble, disassemble_word
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstructionFormat, InstructionSpec, SPECS
from repro.isa.registers import Register, REGISTER_NAMES, register_number

__all__ = [
    "Assembler",
    "AssembledProgram",
    "Instruction",
    "InstructionFormat",
    "InstructionSpec",
    "Register",
    "REGISTER_NAMES",
    "SPECS",
    "decode",
    "disassemble",
    "disassemble_word",
    "encode",
    "register_number",
]
