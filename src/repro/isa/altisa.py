"""An alternative RISC encoding, for the cross-ISA experiment.

Paper Section 5: "One such experiment is to measure the effectiveness of
this method on instruction sets other than MIPS."  The CCRP mechanism is
ISA-agnostic — only the *byte statistics* the preselected Huffman code is
trained on are ISA-specific.  To run the paper's proposed experiment we
therefore need the same programs in a second, structurally different
32-bit encoding.

:func:`reencode_program` deterministically translates a MIPS-I text
segment into an ARM-flavoured layout ("A32-like"): a 4-bit always-true
condition field up front, a 4-bit operation class, destination/source
registers in different bit positions, split 12-bit immediates, and a
link bit instead of a separate call opcode.  The translation preserves
the program's *information* (every operand survives, and
:func:`reencode_program` is injective per instruction) while completely
rearranging which bits land in which byte — which is exactly what
changes between real ISAs and what the preselected code is sensitive to.

The ``cross-isa`` experiment then measures: (a) how compressible the
A32-like corpus is with its *own* preselected code, and (b) how badly a
MIPS-trained code does on it — quantifying the paper's claim that "code
from a given architecture often has similar characteristics" (and its
converse: codes do not transfer across architectures).
"""

from __future__ import annotations

from repro.isa.decoding import decode_program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Category, InstructionFormat

#: The ARM "always" condition, occupying the top nibble like real A32.
_COND_AL = 0xE

#: Operation classes (4 bits at [27:24]).
_CLS_ALU_REG = 0x0
_CLS_ALU_IMM = 0x2
_CLS_LOAD = 0x4
_CLS_STORE = 0x5
_CLS_BRANCH = 0xA
_CLS_BRANCH_LINK = 0xB
_CLS_MUL = 0x6
_CLS_FP = 0xC
_CLS_SYS = 0xF

#: Condition nibbles for conditional branches (A32-style cond field).
_BRANCH_COND = {
    "beq": 0x0,
    "bne": 0x1,
    "blez": 0xD,
    "bgtz": 0xC,
    "bltz": 0xB,
    "bgez": 0xA,
    "bltzal": 0xB,
    "bgezal": 0xA,
    "bc1t": 0x6,
    "bc1f": 0x7,
}

#: ALU sub-opcodes (4 bits at [23:20]), ARM-flavoured ordering.
_ALU_SUBOP = {
    "addu": 0x4, "add": 0x4, "addiu": 0x4, "addi": 0x4,
    "subu": 0x2, "sub": 0x2,
    "and": 0x0, "andi": 0x0,
    "or": 0xC, "ori": 0xC,
    "xor": 0x1, "xori": 0x1,
    "nor": 0xE,
    "slt": 0xA, "slti": 0xA, "sltu": 0xB, "sltiu": 0xB,
    "sll": 0xD, "srl": 0xD, "sra": 0xD, "sllv": 0xD, "srlv": 0xD, "srav": 0xD,
    "lui": 0x8,
}


def reencode_instruction(instruction: Instruction) -> int:
    """One MIPS-I instruction as a 32-bit A32-like word."""
    spec = instruction.spec
    mnemonic = spec.mnemonic
    category = spec.category
    word = _COND_AL << 28

    if category in (Category.LOAD, Category.STORE, Category.FP_LOAD, Category.FP_STORE):
        cls = _CLS_LOAD if category in (Category.LOAD, Category.FP_LOAD) else _CLS_STORE
        offset = instruction.imm_signed
        up = 1 if offset >= 0 else 0
        return (
            word
            | (cls << 24)
            | (up << 23)
            | (instruction.rs << 16)  # base register, ARM's Rn slot
            | (instruction.rt << 12)  # data register, ARM's Rd slot
            | (abs(offset) & 0xFFF)
        )
    if category in (Category.BRANCH, Category.FP_BRANCH):
        # Conditional branches carry their condition in the cond nibble,
        # exactly as A32 does — which also keeps them disjoint from jumps.
        condition = _BRANCH_COND.get(mnemonic, 0x8)
        return (
            (condition << 28)
            | (_CLS_BRANCH << 24)
            | (instruction.imm_unsigned << 4)
            | (instruction.rs & 0xF)
            | ((instruction.rs >> 4) << 20)
        )
    if category in (Category.JUMP, Category.CALL, Category.JUMP_REG):
        cls = _CLS_BRANCH_LINK if category is Category.CALL else _CLS_BRANCH
        if spec.format is InstructionFormat.J:
            return word | (cls << 24) | instruction.target
        return word | (cls << 24) | (1 << 20) | (instruction.rs << 8)
    if category in (Category.MULTDIV, Category.HILO):
        return (
            word
            | (_CLS_MUL << 24)
            | ((spec.funct or 0) << 16)
            | (instruction.rs << 8)
            | instruction.rt
            | (instruction.rd << 12)
        )
    if spec.is_fp:
        return (
            word
            | (_CLS_FP << 24)
            | ((spec.funct or 0) << 16)
            | (instruction.shamt << 12)  # fd in the Rd slot
            | (instruction.rd << 8)  # fs
            | instruction.rt  # ft
        )
    if category is Category.SYSTEM:
        return word | (_CLS_SYS << 24) | (spec.funct or 0)

    # ALU: register or immediate form, two-operand ARM layout.
    subop = _ALU_SUBOP.get(mnemonic, 0x4)
    if spec.format is InstructionFormat.R:
        return (
            word
            | (_CLS_ALU_REG << 24)
            | (subop << 20)
            | (instruction.rs << 16)
            | (instruction.rd << 12)
            | (instruction.shamt << 7)
            | instruction.rt
        )
    # lui has no source register, so its top immediate nibble reuses the
    # (always zero) Rn slot — keeping the translation injective.
    high_nibble = ((instruction.imm_unsigned >> 12) & 0xF) << 16 if mnemonic == "lui" else 0
    return (
        word
        | (_CLS_ALU_IMM << 24)
        | (subop << 20)
        | (instruction.rs << 16)
        | (instruction.rt << 12)
        | (instruction.imm_unsigned & 0xFFF)
        | high_nibble
    )


def reencode_program(text: bytes) -> bytes:
    """Translate a MIPS-I text segment into the A32-like encoding.

    Output is the same length (both are fixed 32-bit ISAs) and big-endian,
    matching the rest of the library's conventions.
    """
    return b"".join(
        reencode_instruction(instruction).to_bytes(4, "big")
        for instruction in decode_program(text)
    )
