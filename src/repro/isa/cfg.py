"""Static control-flow analysis of MIPS-I text segments.

Builds basic blocks and a control-flow graph directly from encoded text —
the static complement to the dynamic profiler.  Used by the workload
validation tooling and handy for users inspecting their own firmware
(e.g. to see which blocks a compressed line boundary splits).

Branch delay slots are modelled the MIPS way: the slot instruction
belongs to its branch's block, and fall-through from a taken branch goes
to the *target*, not the slot successor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.decoding import decode_program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Category


@dataclass(frozen=True)
class BasicBlock:
    """One basic block of a control-flow graph.

    Attributes:
        start: Address of the first instruction.
        end: Address one past the last instruction (the delay slot of a
            closing branch is included).
        successors: Addresses of blocks control may flow to; empty for
            blocks ending in ``jr`` (returns/indirect) or at text end.
        terminator: Mnemonic of the control transfer closing the block,
            or ``None`` for a pure fall-through block.
    """

    start: int
    end: int
    successors: tuple[int, ...]
    terminator: str | None

    @property
    def size_bytes(self) -> int:
        return self.end - self.start

    @property
    def instruction_count(self) -> int:
        return self.size_bytes // 4


@dataclass(frozen=True)
class ControlFlowGraph:
    """Basic blocks of one text segment, keyed by start address."""

    blocks: dict[int, BasicBlock] = field(default_factory=dict)
    text_base: int = 0
    text_end: int = 0

    def block_at(self, address: int) -> BasicBlock:
        """The block containing ``address`` (not necessarily its start)."""
        starts = sorted(self.blocks)
        low, high = 0, len(starts) - 1
        while low <= high:
            mid = (low + high) // 2
            block = self.blocks[starts[mid]]
            if address < block.start:
                high = mid - 1
            elif address >= block.end:
                low = mid + 1
            else:
                return block
        raise KeyError(f"no block contains {address:#x}")

    def reachable_from(self, entry: int) -> set[int]:
        """Block start addresses reachable from ``entry`` by CFG edges."""
        seen: set[int] = set()
        frontier = [self.block_at(entry).start]
        while frontier:
            start = frontier.pop()
            if start in seen or start not in self.blocks:
                continue
            seen.add(start)
            frontier.extend(self.blocks[start].successors)
        return seen

    @property
    def block_count(self) -> int:
        return len(self.blocks)

    def average_block_bytes(self) -> float:
        if not self.blocks:
            return 0.0
        return sum(block.size_bytes for block in self.blocks.values()) / len(self.blocks)


def _branch_target(instruction: Instruction, address: int) -> int:
    return address + 4 + (instruction.imm_signed << 2)


def _jump_target(instruction: Instruction, address: int) -> int:
    return ((address + 4) & 0xF000_0000) | (instruction.target << 2)


def find_leaders(
    instructions: tuple[Instruction, ...] | list[Instruction],
    text_base: int = 0,
    split_after_syscalls: bool = False,
) -> set[int]:
    """Basic-block leader addresses of a decoded text segment.

    Leaders are the entry point, every branch/jump target, and the
    instruction after each control transfer's delay slot.  With
    ``split_after_syscalls`` the instruction after a ``syscall`` or
    ``break`` also starts a block — the superop execution engine needs
    syscalls to end blocks so a mid-run exit never splits an event.
    """
    count = len(instructions)
    text_end = text_base + 4 * count
    leaders: set[int] = {text_base} if count else set()
    # Memoise the control-transfer property per (shared) spec object:
    # large programs hit this loop tens of thousands of times.
    transfers: dict[int, bool] = {}
    for index, instruction in enumerate(instructions):
        address = text_base + 4 * index
        spec = instruction.spec
        is_transfer = transfers.get(id(spec))
        if is_transfer is None:
            is_transfer = transfers[id(spec)] = spec.is_control_transfer
        if not is_transfer:
            if split_after_syscalls and instruction.mnemonic in ("syscall", "break"):
                leaders.add(address + 4)
            continue
        category = instruction.spec.category
        if category in (Category.BRANCH, Category.FP_BRANCH):
            leaders.add(_branch_target(instruction, address))
        elif category in (Category.JUMP, Category.CALL):
            if instruction.mnemonic in ("j", "jal"):
                leaders.add(_jump_target(instruction, address))
            elif instruction.mnemonic in ("bltzal", "bgezal"):
                leaders.add(_branch_target(instruction, address))
        # the instruction after the delay slot starts a new block
        leaders.add(address + 8)
    return {leader for leader in leaders if text_base <= leader < text_end}


def static_transfer_targets(
    instructions: tuple[Instruction, ...] | list[Instruction],
    text_base: int = 0,
) -> list[tuple[int, int]]:
    """Statically-resolvable control-transfer edges of a text segment.

    Returns ``(instruction_address, target_address)`` pairs, in static
    program order, for every branch (conditional or linking) and direct
    jump whose target is an immediate — the edges the branch-target
    buffer of :mod:`repro.prefetch` is trained from.  Indirect transfers
    (``jr``/``jalr``) have no static target and are omitted; targets
    outside the text segment are dropped.
    """
    count = len(instructions)
    text_end = text_base + 4 * count
    edges: list[tuple[int, int]] = []
    for index, instruction in enumerate(instructions):
        spec = instruction.spec
        if not spec.is_control_transfer:
            continue
        address = text_base + 4 * index
        category = spec.category
        if category in (Category.BRANCH, Category.FP_BRANCH):
            target = _branch_target(instruction, address)
        elif instruction.mnemonic in ("j", "jal"):
            target = _jump_target(instruction, address)
        elif instruction.mnemonic in ("bltzal", "bgezal"):
            target = _branch_target(instruction, address)
        else:  # jr / jalr: target unknown until run time
            continue
        if text_base <= target < text_end:
            edges.append((address, target))
    return edges


def build_cfg(
    text: bytes,
    text_base: int = 0,
    instructions: tuple[Instruction, ...] | None = None,
) -> ControlFlowGraph:
    """Build the control-flow graph of an encoded text segment.

    Args:
        text: Encoded text-segment bytes.
        text_base: Load address of the segment.
        instructions: Pre-decoded instructions for ``text``; pass them to
            skip the redundant decode when the caller already has them
            (the superop engine does).
    """
    if instructions is None:
        instructions = decode_program(text)
    count = len(instructions)
    text_end = text_base + 4 * count

    # --- pass 1: find leaders --------------------------------------------
    leaders = find_leaders(instructions, text_base)

    # --- pass 2: carve blocks --------------------------------------------
    ordered = sorted(leaders)
    blocks: dict[int, BasicBlock] = {}
    for position, start in enumerate(ordered):
        limit = ordered[position + 1] if position + 1 < len(ordered) else text_end
        # Find the closing control transfer, if any, within [start, limit).
        terminator: str | None = None
        end = limit
        successors: list[int] = []
        address = start
        while address < limit:
            instruction = instructions[(address - text_base) // 4]
            if instruction.spec.is_control_transfer:
                terminator = instruction.mnemonic
                end = min(address + 8, text_end)  # include the delay slot
                category = instruction.spec.category
                if category in (Category.BRANCH, Category.FP_BRANCH):
                    target = _branch_target(instruction, address)
                    if text_base <= target < text_end:
                        successors.append(target)
                    if instruction.mnemonic not in ("beq",) or instruction.rs or instruction.rt:
                        # conditional: may fall through past the slot
                        if end < text_end:
                            successors.append(end)
                elif instruction.mnemonic == "j":
                    target = _jump_target(instruction, address)
                    if text_base <= target < text_end:
                        successors.append(target)
                elif category is Category.CALL:
                    # calls return; the static successor is after the slot
                    if end < text_end:
                        successors.append(end)
                # jr: unknown successors (return / jump table)
                break
            address += 4
        else:
            if limit < text_end:
                successors.append(limit)
        blocks[start] = BasicBlock(
            start=start,
            end=end,
            successors=tuple(dict.fromkeys(successors)),
            terminator=terminator,
        )
    return ControlFlowGraph(blocks=blocks, text_base=text_base, text_end=text_end)
