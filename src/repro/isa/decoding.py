"""Decode 32-bit words back to :class:`~repro.isa.instruction.Instruction`.

This is the software twin of the CCRP core's instruction decoder: the
functional simulator and the disassembler both run on top of it, and the
round-trip ``decode(encode(i)) == i`` property is enforced by tests.
"""

from __future__ import annotations

from repro.errors import DecodingError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    COP1_BC,
    COP1_MFC1,
    COP1_MTC1,
    COP1_BY_FMT_FUNCT,
    I_J_BY_OPCODE,
    InstructionFormat,
    R_BY_FUNCT,
    REGIMM_BY_SELECTOR,
    SPECS_BY_MNEMONIC,
)

_SIGN_BIT = 0x8000


def _imm(word: int) -> int:
    value = word & 0xFFFF
    return value - 0x10000 if value & _SIGN_BIT else value


def decode(word: int) -> Instruction:
    """Decode ``word`` into an :class:`Instruction`.

    Raises :class:`~repro.errors.DecodingError` if the word does not encode
    an instruction in the supported MIPS-I subset.
    """
    if not 0 <= word < (1 << 32):
        raise DecodingError(f"not a 32-bit word: {word:#x}")
    opcode = word >> 26
    rs = (word >> 21) & 0x1F
    rt = (word >> 16) & 0x1F
    rd = (word >> 11) & 0x1F
    shamt = (word >> 6) & 0x1F
    funct = word & 0x3F

    if opcode == 0:
        spec = R_BY_FUNCT.get(funct)
        if spec is None:
            raise DecodingError(f"unknown R-type funct {funct:#x} in word {word:#010x}")
        return Instruction(spec, rs=rs, rt=rt, rd=rd, shamt=shamt)

    if opcode == 0x01:
        spec = REGIMM_BY_SELECTOR.get(rt)
        if spec is None:
            raise DecodingError(f"unknown REGIMM selector {rt:#x} in word {word:#010x}")
        return Instruction(spec, rs=rs, imm=_imm(word))

    if opcode == 0x11:
        if rs == COP1_BC:
            mnemonic = "bc1t" if rt & 1 else "bc1f"
            return Instruction(SPECS_BY_MNEMONIC[mnemonic], imm=_imm(word))
        if rs in (COP1_MFC1, COP1_MTC1):
            mnemonic = "mfc1" if rs == COP1_MFC1 else "mtc1"
            return Instruction(SPECS_BY_MNEMONIC[mnemonic], rt=rt, rd=rd)
        spec = COP1_BY_FMT_FUNCT.get((rs, funct))
        if spec is None:
            raise DecodingError(
                f"unknown COP1 fmt/funct ({rs:#x}, {funct:#x}) in word {word:#010x}"
            )
        # The fmt value lives in the spec; normalise rs to 0 so that
        # decode(encode(i)) == i for assembler-built instructions.
        return Instruction(spec, rt=rt, rd=rd, shamt=shamt)

    spec = I_J_BY_OPCODE.get(opcode)
    if spec is None:
        raise DecodingError(f"unknown opcode {opcode:#x} in word {word:#010x}")
    if spec.format is InstructionFormat.J:
        return Instruction(spec, target=word & 0x03FF_FFFF)
    return Instruction(spec, rs=rs, rt=rt, imm=_imm(word))


def decode_program(code: bytes) -> list[Instruction]:
    """Decode a contiguous big-endian byte string into instructions."""
    if len(code) % 4:
        raise DecodingError(f"code length {len(code)} is not a multiple of 4")
    return [
        decode(int.from_bytes(code[offset : offset + 4], "big"))
        for offset in range(0, len(code), 4)
    ]
