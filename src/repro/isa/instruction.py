"""The :class:`Instruction` value object.

An :class:`Instruction` pairs an :class:`~repro.isa.opcodes.InstructionSpec`
with concrete field values.  It is the common currency between the
assembler, the binary encoder/decoder, the disassembler, and the functional
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import InstructionSpec, SPECS_BY_MNEMONIC


@dataclass(frozen=True)
class Instruction:
    """One concrete MIPS-I instruction.

    Field interpretation depends on the format:

    * ``rs``/``rt``/``rd``/``shamt`` are the usual 5-bit register and shift
      fields; for COP1 arithmetic they hold ``fmt``/``ft``/``fs``/``fd``.
    * ``imm`` is the 16-bit immediate, kept as a signed Python int in
      ``[-32768, 65535]`` (the encoder masks it; signed vs. zero-extended
      interpretation is the executing instruction's business).
    * ``target`` is the 26-bit word-address field of J-format jumps.
    """

    spec: InstructionSpec
    rs: int = 0
    rt: int = 0
    rd: int = 0
    shamt: int = 0
    imm: int = 0
    target: int = 0

    def __post_init__(self) -> None:
        for name in ("rs", "rt", "rd", "shamt"):
            value = getattr(self, name)
            if not 0 <= value < 32:
                raise ValueError(f"{self.spec.mnemonic}: field {name}={value} not in [0, 32)")
        if not -0x8000 <= self.imm <= 0xFFFF:
            raise ValueError(f"{self.spec.mnemonic}: imm={self.imm} not a 16-bit value")
        # Canonicalise to the unsigned 16-bit representation so that equal
        # encodings compare equal regardless of how the immediate was given.
        object.__setattr__(self, "imm", self.imm & 0xFFFF)
        if not 0 <= self.target < (1 << 26):
            raise ValueError(f"{self.spec.mnemonic}: target={self.target} not a 26-bit value")

    @property
    def mnemonic(self) -> str:
        """Assembly mnemonic of this instruction."""
        return self.spec.mnemonic

    @property
    def imm_signed(self) -> int:
        """The immediate sign-extended from 16 bits."""
        value = self.imm & 0xFFFF
        return value - 0x10000 if value & 0x8000 else value

    @property
    def imm_unsigned(self) -> int:
        """The immediate zero-extended from 16 bits."""
        return self.imm & 0xFFFF

    @classmethod
    def make(cls, mnemonic: str, **fields: int) -> "Instruction":
        """Build an instruction from its mnemonic and named fields.

        Example::

            Instruction.make("addu", rd=2, rs=4, rt=5)
        """
        spec = SPECS_BY_MNEMONIC.get(mnemonic)
        if spec is None:
            raise KeyError(f"unknown mnemonic {mnemonic!r}")
        return cls(spec, **fields)


#: The canonical no-operation: ``sll $0, $0, 0`` encodes to 0x00000000.
NOP = Instruction.make("sll", rd=0, rt=0, shamt=0)
