"""A tomcatv-style mesh relaxation workload.

SPEC's tomcatv generates a 2-D mesh by iterating residual and relaxation
sweeps over coordinate arrays.  This kernel keeps that structure: per
outer iteration, an unrolled residual stencil over the interior of a
18x18 grid of doubles, an unrolled reduction of the residuals, and an
unrolled update sweep — three loop nests whose combined code footprint
(~900 bytes) no longer fits the smallest caches.
"""

#: Grid dimension (interior 16x16 so the unrolled loops divide evenly).
N = 18

_ROW = N * 8

TOMCATV_SOURCE = f"""
# --- tomcatv-style relaxation over a {N}x{N} double grid ----------------
.text
main:
    jal grid_init
    nop
    la  $t3, tc_half
    l.d $f28, 0($t3)
    li  $s7, 80             # outer iterations
tc_iter:
    jal residual_sweep
    nop
    jal reduce_residual
    nop
    jal update_sweep
    nop
    addiu $s7, $s7, -1
    bnez $s7, tc_iter
    nop
    li $a0, 0
    li $v0, 10
    syscall

# x[i][j] = (i*j mod 7) / 4 over the full grid.
grid_init:
    la  $t0, tc_x
    li  $t1, 0              # i
gi_i:
    li  $t2, 0              # j
gi_j:
    mult $t1, $t2
    mflo $t4
    li  $t5, 7
    divu $t4, $t5
    mfhi $t4
    mtc1 $t4, $f0
    cvt.d.w $f2, $f0
    li  $t5, 4
    mtc1 $t5, $f4
    cvt.d.w $f6, $f4
    div.d $f8, $f2, $f6
    s.d $f8, 0($t0)
    addiu $t0, $t0, 8
    addiu $t2, $t2, 1
    li  $t6, {N}
    bne $t2, $t6, gi_j
    nop
    addiu $t1, $t1, 1
    bne $t1, $t6, gi_i
    nop
    jr  $ra
    nop

# r[i][j] = x[i][j-1] + x[i][j+1] + x[i-1][j] + x[i+1][j] - 4 x[i][j],
# unrolled two columns per trip.
residual_sweep:
    la  $t0, tc_x
    addiu $t0, $t0, {_ROW + 8}      # &x[1][1]
    la  $t1, tc_r
    addiu $t1, $t1, {_ROW + 8}
    li  $t2, {N - 2}                # i
rs_i:
    li  $t3, {(N - 2) // 2}         # j pairs
rs_j:
    l.d $f0, -8($t0)
    l.d $f2, 8($t0)
    add.d $f0, $f0, $f2
    l.d $f2, -{_ROW}($t0)
    add.d $f0, $f0, $f2
    l.d $f2, {_ROW}($t0)
    add.d $f0, $f0, $f2
    l.d $f4, 0($t0)
    add.d $f6, $f4, $f4
    add.d $f6, $f6, $f6             # 4*x
    sub.d $f0, $f0, $f6
    s.d $f0, 0($t1)
    l.d $f10, 0($t0)
    l.d $f12, 16($t0)
    add.d $f10, $f10, $f12
    l.d $f12, {-_ROW + 8}($t0)
    add.d $f10, $f10, $f12
    l.d $f12, {_ROW + 8}($t0)
    add.d $f10, $f10, $f12
    l.d $f14, 8($t0)
    add.d $f16, $f14, $f14
    add.d $f16, $f16, $f16
    sub.d $f10, $f10, $f16
    s.d $f10, 8($t1)
    addiu $t0, $t0, 16
    addiu $t1, $t1, 16
    addiu $t3, $t3, -1
    bnez $t3, rs_j
    nop
    addiu $t0, $t0, 16              # skip boundary columns
    addiu $t1, $t1, 16
    addiu $t2, $t2, -1
    bnez $t2, rs_i
    nop
    jr  $ra
    nop

# rsum = sum r*r, unrolled four elements per trip.
reduce_residual:
    la  $t0, tc_r
    li  $t1, {N * N // 4}
    mtc1 $zero, $f0
    mtc1 $zero, $f1
rr_loop:
    l.d $f2, 0($t0)
    mul.d $f4, $f2, $f2
    add.d $f0, $f0, $f4
    l.d $f2, 8($t0)
    mul.d $f4, $f2, $f2
    add.d $f0, $f0, $f4
    l.d $f2, 16($t0)
    mul.d $f4, $f2, $f2
    add.d $f0, $f0, $f4
    l.d $f2, 24($t0)
    mul.d $f4, $f2, $f2
    add.d $f0, $f0, $f4
    addiu $t0, $t0, 32
    addiu $t1, $t1, -1
    bnez $t1, rr_loop
    nop
    la  $t2, tc_rsum
    s.d $f0, 0($t2)
    jr  $ra
    nop

# x[i][j] += 0.5 * r[i][j], unrolled four elements per trip.
update_sweep:
    la  $t0, tc_x
    addiu $t0, $t0, {_ROW + 8}
    la  $t1, tc_r
    addiu $t1, $t1, {_ROW + 8}
    li  $t2, {(N - 2) * (N - 2) // 4}
us_loop:
    l.d $f0, 0($t0)
    l.d $f2, 0($t1)
    mul.d $f4, $f2, $f28
    add.d $f0, $f0, $f4
    s.d $f0, 0($t0)
    l.d $f6, 8($t0)
    l.d $f8, 8($t1)
    mul.d $f10, $f8, $f28
    add.d $f6, $f6, $f10
    s.d $f6, 8($t0)
    l.d $f12, 16($t0)
    l.d $f14, 16($t1)
    mul.d $f16, $f14, $f28
    add.d $f12, $f12, $f16
    s.d $f12, 16($t0)
    l.d $f18, 24($t0)
    l.d $f20, 24($t1)
    mul.d $f22, $f20, $f28
    add.d $f18, $f18, $f22
    s.d $f18, 24($t0)
    addiu $t0, $t0, 32
    addiu $t1, $t1, 32
    addiu $t2, $t2, -1
    bnez $t2, us_loop
    nop
    jr  $ra
    nop

.data
.align 3
tc_half: .double 0.5
tc_rsum: .space 8
tc_x: .space {N * N * 8 + 64}
tc_r: .space {N * N * 8 + 64}
"""
