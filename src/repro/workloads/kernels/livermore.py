"""Livermore loop 1 — hydro fragment (``lloopO1`` in the paper).

``x[k] = q + y[k] * (r * z[k+10] + t * z[k+11])`` over 400 elements,
repeated for many passes.  The kernel is tiny — it fits comfortably in
even a 256-byte instruction cache, which is why the paper's lloopO1 shows
near-zero miss rates at every size.
"""

#: Vector length (the classic Livermore loop 1 parameter).
N = 400

#: Outer repetitions, sized to give a paper-scale dynamic trace.
PASSES = 60

LLOOP01_SOURCE = f"""
# --- Livermore loop 1: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]) --------
.text
main:
    # seed y[k] = k/8, z[k] = k/16 (cheap deterministic fill)
    la  $t0, vec_y
    la  $t1, vec_z
    li  $t2, 0
fill:
    mtc1 $t2, $f0
    cvt.d.w $f2, $f0
    li  $t3, 8
    mtc1 $t3, $f4
    cvt.d.w $f6, $f4
    div.d $f8, $f2, $f6
    s.d $f8, 0($t0)
    li  $t3, 16
    mtc1 $t3, $f4
    cvt.d.w $f6, $f4
    div.d $f8, $f2, $f6
    s.d $f8, 0($t1)
    addiu $t0, $t0, 8
    addiu $t1, $t1, 8
    addiu $t2, $t2, 1
    li  $t4, {N + 11}
    bne $t2, $t4, fill
    nop

    # constants q, r, t
    la  $t0, const_q
    l.d $f20, 0($t0)
    l.d $f22, 8($t0)        # r
    l.d $f24, 16($t0)       # t

    li  $s2, {PASSES}
pass_loop:
    la  $s0, vec_x
    la  $s1, vec_y
    la  $s3, vec_z
    li  $t2, {N}
kernel:
    l.d $f0, 80($s3)        # z[k+10]
    l.d $f2, 88($s3)        # z[k+11]
    mul.d $f4, $f22, $f0    # r*z[k+10]
    mul.d $f6, $f24, $f2    # t*z[k+11]
    add.d $f4, $f4, $f6
    l.d $f8, 0($s1)         # y[k]
    mul.d $f4, $f8, $f4
    add.d $f4, $f20, $f4    # q + ...
    s.d $f4, 0($s0)
    addiu $s0, $s0, 8
    addiu $s1, $s1, 8
    addiu $s3, $s3, 8
    addiu $t2, $t2, -1
    bnez $t2, kernel
    nop
    addiu $s2, $s2, -1
    bnez $s2, pass_loop
    nop

    # exit with trunc(x[N-1]) as a self-check
    la  $t0, vec_x
    l.d $f0, {(N - 1) * 8}($t0)
    cvt.w.d $f2, $f0
    mfc1 $a0, $f2
    li  $v0, 10
    syscall

.data
.align 3
const_q: .double 0.5
.double 2.0
.double 3.0
vec_x: .space {N * 8}
vec_y: .space {(N + 11) * 8}
vec_z: .space {(N + 11) * 8}
"""


def expected_exit() -> int:
    """trunc(x[N-1]) computed independently."""
    q, r, t = 0.5, 2.0, 3.0
    k = N - 1
    y = k / 8
    z10 = (k + 10) / 16
    z11 = (k + 11) / 16
    return int(q + y * (r * z10 + t * z11))
