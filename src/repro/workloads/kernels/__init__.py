"""Hand-written MIPS-I assembly kernels for the benchmark suite."""

from repro.workloads.kernels.eightq import EIGHTQ_SOURCE
from repro.workloads.kernels.livermore import LLOOP01_SOURCE
from repro.workloads.kernels.matrix import MATRIX25A_SOURCE
from repro.workloads.kernels.nasa import NASA1_SOURCE, NASA7_SOURCE
from repro.workloads.kernels.tomcatv import TOMCATV_SOURCE

__all__ = [
    "EIGHTQ_SOURCE",
    "LLOOP01_SOURCE",
    "MATRIX25A_SOURCE",
    "NASA1_SOURCE",
    "NASA7_SOURCE",
    "TOMCATV_SOURCE",
]
