"""Extra validation workloads (not part of the paper's tables).

Three real algorithms whose results are independently checkable in
Python, used to pin down the functional simulator's integer semantics:

* ``qsort`` — recursive Lomuto quicksort over 256 LCG-generated words;
  exits with the number of correctly ordered adjacent pairs (255 when
  fully sorted).
* ``crc32`` — bitwise reflected CRC-32 (polynomial 0xEDB88320) over a
  deterministic 256-byte buffer; exits with the CRC, which the tests
  compare against :func:`zlib.crc32`.
* ``fib`` — naive recursive Fibonacci(20) = 6765; a deep-recursion
  stack-discipline stress.
"""

QSORT_SOURCE = """
# --- recursive quicksort over 256 words --------------------------------
.text
main:
    # fill arr[i] with an LCG so the data is thoroughly unsorted
    la  $s0, arr
    li  $s1, 12345          # seed
    li  $t0, 0
fill:
    lui $t1, 0x41C6
    ori $t1, $t1, 0x4E6D    # 1103515245
    mult $s1, $t1
    mflo $s1
    addiu $s1, $s1, 12345
    srl $t2, $s1, 8
    andi $t2, $t2, 0xFFFF
    sll $t3, $t0, 2
    addu $t3, $s0, $t3
    sw  $t2, 0($t3)
    addiu $t0, $t0, 1
    li  $t4, 256
    bne $t0, $t4, fill
    nop

    li  $a0, 0              # lo
    li  $a1, 255            # hi
    jal quicksort
    nop

    # count correctly ordered adjacent pairs
    la  $t0, arr
    li  $t1, 0              # i
    li  $t2, 0              # ordered count
check:
    lw  $t3, 0($t0)
    lw  $t4, 4($t0)
    sltu $t5, $t4, $t3      # 1 if out of order
    xori $t5, $t5, 1
    addu $t2, $t2, $t5
    addiu $t0, $t0, 4
    addiu $t1, $t1, 1
    li  $t6, 255
    bne $t1, $t6, check
    nop
    move $a0, $t2
    li  $v0, 10
    syscall

# quicksort(lo, hi) over word indices, Lomuto partition, pivot = arr[hi]
quicksort:
    slt $t0, $a0, $a1
    bnez $t0, qs_work
    nop
    jr  $ra                 # lo >= hi: done
    nop
qs_work:
    addiu $sp, $sp, -16
    sw  $ra, 12($sp)
    sw  $s2, 8($sp)         # lo
    sw  $s3, 4($sp)         # hi
    sw  $s4, 0($sp)         # partition index
    move $s2, $a0
    move $s3, $a1

    # --- partition ------------------------------------------------------
    la  $t8, arr
    sll $t0, $s3, 2
    addu $t0, $t8, $t0
    lw  $t9, 0($t0)         # pivot = arr[hi]
    move $t1, $s2           # store index i
    move $t2, $s2           # scan index j
part_loop:
    slt $t0, $t2, $s3
    beqz $t0, part_done
    nop
    sll $t3, $t2, 2
    addu $t3, $t8, $t3
    lw  $t4, 0($t3)         # arr[j]
    sltu $t5, $t9, $t4      # pivot < arr[j]?
    bnez $t5, part_next
    nop
    # swap arr[i] <-> arr[j]
    sll $t6, $t1, 2
    addu $t6, $t8, $t6
    lw  $t7, 0($t6)
    sw  $t4, 0($t6)
    sw  $t7, 0($t3)
    addiu $t1, $t1, 1
part_next:
    addiu $t2, $t2, 1
    b   part_loop
    nop
part_done:
    # swap arr[i] <-> arr[hi]
    sll $t6, $t1, 2
    addu $t6, $t8, $t6
    lw  $t7, 0($t6)
    sll $t3, $s3, 2
    addu $t3, $t8, $t3
    lw  $t4, 0($t3)
    sw  $t4, 0($t6)
    sw  $t7, 0($t3)
    move $s4, $t1           # partition index p

    # --- recurse --------------------------------------------------------
    move $a0, $s2
    addiu $a1, $s4, -1
    jal quicksort
    nop
    addiu $a0, $s4, 1
    move $a1, $s3
    jal quicksort
    nop

    lw  $ra, 12($sp)
    lw  $s2, 8($sp)
    lw  $s3, 4($sp)
    lw  $s4, 0($sp)
    addiu $sp, $sp, 16
    jr  $ra
    nop

.data
.align 2
arr: .space 1024
"""

CRC32_SOURCE = """
# --- bitwise reflected CRC-32 over a 256-byte buffer ---------------------
.text
main:
    # buffer[i] = (7*i + 3) & 0xFF
    la  $s0, buf
    li  $t0, 0
fill:
    sll $t1, $t0, 3
    subu $t1, $t1, $t0      # 7*i
    addiu $t1, $t1, 3
    andi $t1, $t1, 0xFF
    addu $t2, $s0, $t0
    sb  $t1, 0($t2)
    addiu $t0, $t0, 1
    li  $t3, 256
    bne $t0, $t3, fill
    nop

    li  $s1, -1             # crc = 0xFFFFFFFF
    lui $s2, 0xEDB8
    ori $s2, $s2, 0x8320    # reflected polynomial
    li  $t0, 0              # byte index
byte_loop:
    addu $t1, $s0, $t0
    lbu $t2, 0($t1)
    xor $s1, $s1, $t2
    li  $t3, 8              # bit counter
bit_loop:
    andi $t4, $s1, 1
    srl $s1, $s1, 1
    beqz $t4, bit_next
    nop
    xor $s1, $s1, $s2
bit_next:
    addiu $t3, $t3, -1
    bnez $t3, bit_loop
    nop
    addiu $t0, $t0, 1
    li  $t5, 256
    bne $t0, $t5, byte_loop
    nop

    nor $s1, $s1, $zero     # crc ^= 0xFFFFFFFF
    move $a0, $s1
    li  $v0, 10
    syscall

.data
buf: .space 256
"""

FIB_SOURCE = """
# --- naive recursive Fibonacci(20) ---------------------------------------
.text
main:
    li  $a0, 20
    jal fib
    nop
    move $a0, $v0
    li  $v0, 10
    syscall

fib:
    slti $t0, $a0, 2
    beqz $t0, fib_recurse
    nop
    move $v0, $a0           # fib(0)=0, fib(1)=1
    jr  $ra
    nop
fib_recurse:
    addiu $sp, $sp, -12
    sw  $ra, 8($sp)
    sw  $s0, 4($sp)
    sw  $s1, 0($sp)
    move $s0, $a0
    addiu $a0, $s0, -1
    jal fib
    nop
    move $s1, $v0
    addiu $a0, $s0, -2
    jal fib
    nop
    addu $v0, $v0, $s1
    lw  $ra, 8($sp)
    lw  $s0, 4($sp)
    lw  $s1, 0($sp)
    addiu $sp, $sp, 12
    jr  $ra
    nop
"""


def crc32_expected() -> int:
    """The CRC the crc32 kernel must exit with, computed with zlib."""
    import zlib

    buffer = bytes((7 * i + 3) & 0xFF for i in range(256))
    return zlib.crc32(buffer)
