"""25x25 double-precision matrix multiply (``matrix25A`` in the paper).

C = A x B with A[i][j] = i + 2j and B[i][j] = i - j generated in-program,
then a checksum pass over C.  The exit code carries a truncated checksum
the test suite validates against the straightforward Python computation.
"""

#: Matrix dimension used by the kernel (25, as the benchmark name says).
N = 25

#: Row stride in bytes (N doubles).
_STRIDE = N * 8

MATRIX25A_SOURCE = f"""
# --- matrix25A: C = A * B over 25x25 doubles --------------------------
.text
main:
    jal init_matrices
    nop
    jal multiply
    nop
    jal checksum
    nop
    move $a0, $v0
    li  $v0, 10
    syscall

# Fill A[i][j] = i + 2j and B[i][j] = i - j.
init_matrices:
    la  $t0, mat_a
    la  $t1, mat_b
    li  $t2, 0              # i
init_i:
    li  $t3, 0              # j
init_j:
    # value_a = i + 2j
    sll $t4, $t3, 1
    addu $t4, $t4, $t2
    mtc1 $t4, $f0
    cvt.d.w $f2, $f0
    s.d $f2, 0($t0)
    # value_b = i - j
    subu $t5, $t2, $t3
    mtc1 $t5, $f4
    cvt.d.w $f6, $f4
    s.d $f6, 0($t1)
    addiu $t0, $t0, 8
    addiu $t1, $t1, 8
    addiu $t3, $t3, 1
    li  $t6, {N}
    bne $t3, $t6, init_j
    nop
    addiu $t2, $t2, 1
    bne $t2, $t6, init_i
    nop
    jr  $ra
    nop

# Classic i-j-k triple loop; the dot product lives in its own unrolled
# procedure, as the benchmark's FORTRAN compiler emitted it.
multiply:
    addiu $sp, $sp, -8
    sw  $ra, 4($sp)
    la  $s0, mat_a          # A[i][0]
    la  $s2, mat_c          # C[i][0]
    li  $s5, 0              # i
mul_i:
    li  $s6, 0              # j
mul_j:
    move $a0, $s0           # &A[i][0]
    la  $a1, mat_b
    sll $t6, $s6, 3
    addu $a1, $a1, $t6      # &B[0][j]
    jal dot25
    nop
    sll $t6, $s6, 3
    addu $t6, $s2, $t6
    s.d $f0, 0($t6)         # C[i][j] = dot(A row, B column)
    addiu $s6, $s6, 1
    li  $t7, {N}
    bne $s6, $t7, mul_j
    nop
    addiu $s0, $s0, {_STRIDE}
    addiu $s2, $s2, {_STRIDE}
    addiu $s5, $s5, 1
    li  $t7, {N}
    bne $s5, $t7, mul_i
    nop
    lw  $ra, 4($sp)
    addiu $sp, $sp, 8
    jr  $ra
    nop

# dot25(&row, &col): $f0 = sum A[k]*B[k*stride], k = 0..24, unrolled x5.
dot25:
    mtc1 $zero, $f0
    mtc1 $zero, $f1
    move $t4, $a0
    move $t5, $a1
    li  $t2, 5
dot25_k:
    l.d $f2, 0($t4)
    l.d $f4, 0($t5)
    mul.d $f6, $f2, $f4
    add.d $f0, $f0, $f6
    l.d $f2, 8($t4)
    l.d $f4, {_STRIDE}($t5)
    mul.d $f6, $f2, $f4
    add.d $f0, $f0, $f6
    l.d $f2, 16($t4)
    l.d $f4, {2 * _STRIDE}($t5)
    mul.d $f6, $f2, $f4
    add.d $f0, $f0, $f6
    l.d $f2, 24($t4)
    l.d $f4, {3 * _STRIDE}($t5)
    mul.d $f6, $f2, $f4
    add.d $f0, $f0, $f6
    l.d $f2, 32($t4)
    l.d $f4, {4 * _STRIDE}($t5)
    mul.d $f6, $f2, $f4
    add.d $f0, $f0, $f6
    addiu $t4, $t4, 40
    addiu $t5, $t5, {5 * _STRIDE}
    addiu $t2, $t2, -1
    bnez $t2, dot25_k
    nop
    jr  $ra
    nop

# checksum = trunc(sum(C) / 256) so it fits an exit code comparison.
checksum:
    la  $t0, mat_c
    li  $t1, {N * N}
    mtc1 $zero, $f0
    mtc1 $zero, $f1
sum_loop:
    l.d $f2, 0($t0)
    add.d $f0, $f0, $f2
    addiu $t0, $t0, 8
    addiu $t1, $t1, -1
    bnez $t1, sum_loop
    nop
    li  $t2, 256
    mtc1 $t2, $f4
    cvt.d.w $f6, $f4
    div.d $f8, $f0, $f6
    cvt.w.d $f10, $f8
    mfc1 $v0, $f10
    jr  $ra
    nop

.data
.align 3
mat_a: .space {N * N * 8}
mat_b: .space {N * N * 8}
mat_c: .space {N * N * 8}
"""


def expected_checksum() -> int:
    """The checksum main exits with, computed independently in Python."""
    a = [[i + 2 * j for j in range(N)] for i in range(N)]
    b = [[i - j for j in range(N)] for i in range(N)]
    total = 0.0
    for i in range(N):
        for j in range(N):
            total += sum(a[i][k] * b[k][j] for k in range(N))
    return int(total / 256)
