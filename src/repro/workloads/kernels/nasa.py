"""NASA-kernel style floating-point workloads (``NASA1`` / ``NASA7``).

The NAS Kernels benchmark runs seven FORTRAN kernels; NASA1 exercises one.
These reproductions keep the structural property that drives the paper's
cache numbers:

* ``NASA1`` — one composite vector kernel whose working code block is
  ~900 bytes: it conflicts in 256/512-byte caches but fits from 1 KB up
  (the paper measures 2.63 % -> 0.76 % -> 0.24 %).
* ``NASA7`` — seven heavily-unrolled kernels executed round-robin with
  short per-visit trip counts, ~5.5 KB of loop code in total, so the miss
  rate starts high (5.13 % at 256 B in the paper) and falls gradually,
  remaining non-zero even at 4 KB.

The kernels are genuine numeric code (daxpy-, reduction-, stencil-,
matmul-, butterfly-style) over double vectors, unrolled the way a 1992
FORTRAN compiler would emit them.
"""

from __future__ import annotations


def _daxpy_unrolled(label: str, unroll: int, trips: int, vec_a: str, vec_b: str) -> str:
    """a[i] += s * b[i], ``unroll`` elements per trip, ``trips`` trips."""
    body = []
    for u in range(unroll):
        offset = 8 * u
        body.append(f"    l.d $f2, {offset}($t0)")
        body.append(f"    l.d $f4, {offset}($t1)")
        body.append("    mul.d $f6, $f30, $f4")
        body.append("    add.d $f2, $f2, $f6")
        body.append(f"    s.d $f2, {offset}($t0)")
    lines = "\n".join(body)
    return f"""
{label}:
    la  $t0, {vec_a}
    la  $t1, {vec_b}
    li  $t2, {trips}
{label}_loop:
{lines}
    addiu $t0, $t0, {8 * unroll}
    addiu $t1, $t1, {8 * unroll}
    addiu $t2, $t2, -1
    bnez $t2, {label}_loop
    nop
    jr $ra
    nop
"""


def _reduction(label: str, unroll: int, trips: int, vec: str) -> str:
    """sum += v[i] * v[i], unrolled."""
    body = []
    for u in range(unroll):
        body.append(f"    l.d $f2, {8 * u}($t0)")
        body.append("    mul.d $f4, $f2, $f2")
        body.append("    add.d $f0, $f0, $f4")
    lines = "\n".join(body)
    return f"""
{label}:
    la  $t0, {vec}
    li  $t2, {trips}
    mtc1 $zero, $f0
    mtc1 $zero, $f1
{label}_loop:
{lines}
    addiu $t0, $t0, {8 * unroll}
    addiu $t2, $t2, -1
    bnez $t2, {label}_loop
    nop
    la  $t3, scratch
    s.d $f0, 0($t3)
    jr $ra
    nop
"""


def _stencil(label: str, unroll: int, trips: int, vec: str) -> str:
    """v[i] = 0.5*(v[i-1] + v[i+1]), unrolled relaxation sweep."""
    body = []
    for u in range(unroll):
        offset = 8 * u
        body.append(f"    l.d $f2, {offset - 8}($t0)")
        body.append(f"    l.d $f4, {offset + 8}($t0)")
        body.append("    add.d $f6, $f2, $f4")
        body.append("    mul.d $f6, $f6, $f10")
        body.append(f"    s.d $f6, {offset}($t0)")
    lines = "\n".join(body)
    return f"""
{label}:
    la  $t0, {vec}
    addiu $t0, $t0, 8
    li  $t2, {trips}
    la  $t3, half
    l.d $f10, 0($t3)
{label}_loop:
{lines}
    addiu $t0, $t0, {8 * unroll}
    addiu $t2, $t2, -1
    bnez $t2, {label}_loop
    nop
    jr $ra
    nop
"""


def _mini_matmul(label: str, n: int, unroll: int) -> str:
    """An n x n double matmul with the k-loop unrolled ``unroll`` ways."""
    assert n % unroll == 0
    body = []
    for u in range(unroll):
        body.append(f"    l.d $f2, {8 * u}($t4)")
        body.append(f"    l.d $f4, {8 * n * u}($t5)")
        body.append("    mul.d $f6, $f2, $f4")
        body.append("    add.d $f0, $f0, $f6")
    lines = "\n".join(body)
    return f"""
{label}:
    la  $s4, nm_a
    la  $s6, nm_c
    li  $t0, 0
{label}_i:
    li  $t1, 0
{label}_j:
    mtc1 $zero, $f0
    mtc1 $zero, $f1
    move $t4, $s4
    la  $t5, nm_b
    sll $t6, $t1, 3
    addu $t5, $t5, $t6
    li  $t2, {n // unroll}
{label}_k:
{lines}
    addiu $t4, $t4, {8 * unroll}
    addiu $t5, $t5, {8 * n * unroll}
    addiu $t2, $t2, -1
    bnez $t2, {label}_k
    nop
    sll $t6, $t1, 3
    addu $t6, $s6, $t6
    s.d $f0, 0($t6)
    addiu $t1, $t1, 1
    li  $t7, {n}
    bne $t1, $t7, {label}_j
    nop
    addiu $s4, $s4, {8 * n}
    addiu $s6, $s6, {8 * n}
    addiu $t0, $t0, 1
    li  $t7, {n}
    bne $t0, $t7, {label}_i
    nop
    jr $ra
    nop
"""


def _butterfly(label: str, unroll: int, trips: int) -> str:
    """FFT-flavoured butterflies: (a, b) -> (a + w*b, a - w*b), unrolled."""
    body = []
    for u in range(unroll):
        offset = 8 * u
        body.append(f"    l.d $f2, {offset}($t0)")
        body.append(f"    l.d $f4, {offset + 512}($t0)")
        body.append(f"    l.d $f6, {offset}($t1)")
        body.append(f"    l.d $f8, {offset + 512}($t1)")
        body.append("    mul.d $f12, $f4, $f10")
        body.append("    mul.d $f14, $f8, $f10")
        body.append("    add.d $f16, $f2, $f12")
        body.append("    sub.d $f18, $f2, $f12")
        body.append("    add.d $f20, $f6, $f14")
        body.append("    sub.d $f22, $f6, $f14")
        body.append(f"    s.d $f16, {offset}($t0)")
        body.append(f"    s.d $f18, {offset + 512}($t0)")
        body.append(f"    s.d $f20, {offset}($t1)")
        body.append(f"    s.d $f22, {offset + 512}($t1)")
    lines = "\n".join(body)
    return f"""
{label}:
    la  $t0, fft_re
    la  $t1, fft_im
    li  $t2, {trips}
    la  $t3, half
    l.d $f10, 0($t3)
{label}_loop:
{lines}
    addiu $t0, $t0, {8 * unroll}
    addiu $t1, $t1, {8 * unroll}
    addiu $t2, $t2, -1
    bnez $t2, {label}_loop
    nop
    jr $ra
    nop
"""


def _fill(label: str, vec: str, count: int, divisor: int) -> str:
    """v[i] = i / divisor initialisation sweep."""
    return f"""
{label}:
    la  $t0, {vec}
    li  $t1, 0
    li  $t3, {divisor}
    mtc1 $t3, $f4
    cvt.d.w $f6, $f4
{label}_loop:
    mtc1 $t1, $f0
    cvt.d.w $f2, $f0
    div.d $f8, $f2, $f6
    s.d $f8, 0($t0)
    addiu $t0, $t0, 8
    addiu $t1, $t1, 1
    li  $t4, {count}
    bne $t1, $t4, {label}_loop
    nop
    jr $ra
    nop
"""


_NASA_DATA = """
.data
.align 3
half: .double 0.5
scratch: .space 64
nv_a: .space 2112
nv_b: .space 2112
nm_a: .space 2048
nm_b: .space 2048
nm_c: .space 2048
fft_re: .space 1088
fft_im: .space 1088
"""

#: NASA1: one composite vector kernel (unrolled daxpy + reduction +
#: stencil) driven for many short passes; working block ~900 bytes.
NASA1_SOURCE = (
    """
.text
main:
    jal fill_a
    nop
    jal fill_b
    nop
    la  $t3, half
    l.d $f30, 0($t3)
    li  $s7, 130
nasa1_pass:
    jal daxpy16
    nop
    jal sumsq8
    nop
    jal smooth6
    nop
    addiu $s7, $s7, -1
    bnez $s7, nasa1_pass
    nop
    li $a0, 0
    li $v0, 10
    syscall
"""
    + _fill("fill_a", "nv_a", 260, 8)
    + _fill("fill_b", "nv_b", 260, 16)
    + _daxpy_unrolled("daxpy16", 16, 12, "nv_a", "nv_b")
    + _reduction("sumsq8", 8, 24, "nv_a")
    + _stencil("smooth6", 6, 20, "nv_a")
    + _NASA_DATA
)

#: NASA7: seven big unrolled kernels round-robin with short visits.
NASA7_SOURCE = (
    """
.text
main:
    jal fill_a
    nop
    jal fill_b
    nop
    la  $t3, half
    l.d $f30, 0($t3)
    li  $s7, 55
nasa7_pass:
    jal k1_mxm
    nop
    jal k2_daxpy
    nop
    jal k3_sumsq
    nop
    jal k4_smooth
    nop
    jal k5_fft
    nop
    jal k6_daxpy
    nop
    jal k7_mxm
    nop
    addiu $s7, $s7, -1
    bnez $s7, nasa7_pass
    nop
    li $a0, 0
    li $v0, 10
    syscall
"""
    + _fill("fill_a", "nv_a", 260, 8)
    + _fill("fill_b", "nv_b", 260, 16)
    + _mini_matmul("k1_mxm", 8, 8)
    + _daxpy_unrolled("k2_daxpy", 32, 5, "nv_a", "nv_b")
    + _reduction("k3_sumsq", 32, 4, "nv_a")
    + _stencil("k4_smooth", 24, 4, "nv_a")
    + _butterfly("k5_fft", 8, 4)
    + _daxpy_unrolled("k6_daxpy", 28, 5, "nv_b", "nv_a")
    + _mini_matmul("k7_mxm", 12, 12)
    + _NASA_DATA
)
