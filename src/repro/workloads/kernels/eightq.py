"""The eight-queens benchmark (``eightq`` in the paper).

A genuine backtracking solver: ``solve(row, cols, diag1, diag2)`` recurses
over the board using the classic bitmask formulation and returns the number
of solutions (92 for N = 8).  The per-column hot path spans the recursion
loop plus two helper procedures (``is_safe`` and ``attack_masks``), so the
*executed* footprint covers more cache lines than a 256-byte cache holds —
the paper's eightq thrashes at 256 bytes (10.9 % misses) yet nearly fits
at 512 (0.27 %).

The program exits with the solution count in the exit code, which the
test suite checks against 92 — end-to-end evidence the substrate executes
real algorithms correctly.
"""

EIGHTQ_SOURCE = """
# --- eight queens: count solutions with bitmask backtracking ----------
.text
main:
    li  $a0, 0              # row
    li  $a1, 0              # column mask
    li  $a2, 0              # / diagonal mask
    li  $a3, 0              # \\ diagonal mask
    jal solve
    nop
    move $a0, $v0           # exit code = number of solutions (92)
    li  $v0, 10
    syscall

# int solve(row, cols, d1, d2) — masks stay live in $s3/$s4/$s5 for the
# helpers, 1992-FORTRAN-style register globals.
solve:
    li  $t0, 8
    bne $a0, $t0, solve_recurse
    nop
    li  $v0, 1              # row == 8: a full placement
    jr  $ra
    nop

solve_recurse:
    addiu $sp, $sp, -40
    sw  $ra, 36($sp)
    sw  $s0, 32($sp)        # col
    sw  $s1, 28($sp)        # running count
    sw  $s2, 24($sp)        # row
    sw  $s3, 20($sp)        # cols
    sw  $s4, 16($sp)        # d1
    sw  $s5, 12($sp)        # d2
    move $s2, $a0
    move $s3, $a1
    move $s4, $a2
    move $s5, $a3
    li  $s0, 0
    li  $s1, 0

col_loop:
    move $a0, $s2
    move $a1, $s0
    jal is_safe             # uses $s3/$s4/$s5; returns $v0 = safe?
    nop
    beqz $v0, next_col
    nop
    move $a0, $s2           # recompute the placement masks
    move $a1, $s0
    jal attack_masks        # $v0 = colbit, $v1 = d1bit, $t7 = d2bit
    nop
    addiu $a0, $s2, 1
    or  $a1, $s3, $v0
    or  $a2, $s4, $v1
    or  $a3, $s5, $t7
    jal solve
    nop
    addu $s1, $s1, $v0

next_col:
    addiu $s0, $s0, 1
    li  $t0, 8
    bne $s0, $t0, col_loop
    nop

    move $v0, $s1
    lw  $ra, 36($sp)
    lw  $s0, 32($sp)
    lw  $s1, 28($sp)
    lw  $s2, 24($sp)
    lw  $s3, 20($sp)
    lw  $s4, 16($sp)
    lw  $s5, 12($sp)
    addiu $sp, $sp, 40
    jr  $ra
    nop

# is_safe(row, col): true iff the square is unattacked under the masks
# held in $s3 (cols), $s4 (/ diag), $s5 (\\ diag).
is_safe:
    addiu $sp, $sp, -8
    sw  $ra, 4($sp)
    jal attack_masks
    nop
    and $t2, $s3, $v0       # column attacked?
    bnez $t2, unsafe
    nop
    and $t2, $s4, $v1       # / diagonal attacked?
    bnez $t2, unsafe
    nop
    and $t2, $s5, $t7       # \\ diagonal attacked?
    bnez $t2, unsafe
    nop
    li  $v0, 1
    b   safe_done
    nop
unsafe:
    li  $v0, 0
safe_done:
    lw  $ra, 4($sp)
    addiu $sp, $sp, 8
    jr  $ra
    nop

# attack_masks(row, col) -> $v0 = 1<<col, $v1 = 1<<(row+col),
#                           $t7 = 1<<(row-col+7)
attack_masks:
    li   $t0, 1
    sllv $v0, $t0, $a1      # column bit
    addu $t1, $a0, $a1
    sllv $v1, $t0, $t1      # / diagonal bit
    subu $t2, $a0, $a1
    addiu $t2, $t2, 7
    sllv $t7, $t0, $t2      # \\ diagonal bit
    jr   $ra
    nop
"""
