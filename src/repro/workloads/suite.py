"""The named benchmark suite.

Two collections mirror the paper:

* :data:`FIGURE5_PROGRAMS` — the ten-program *compression corpus* of
  Figure 5 at the paper's text-segment sizes.  These only need realistic
  bytes, not execution.
* :data:`SIMULATION_PROGRAMS` — the executable programs the performance
  tables are driven by (NASA7, matrix25A, fpppp, espresso, NASA1, eightq,
  tomcatv, lloopO1).  Each runs on the functional simulator to produce
  its instruction trace.

``load(name)`` returns a cached :class:`Workload`; everything is
deterministic, so repeated loads are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ConfigurationError
from repro.isa.assembler import AssembledProgram, Assembler
from repro.machine.executor import ExecutionResult, Machine
from repro.workloads.codegen import (
    CodeGenerator,
    FP_PERSONALITY,
    FPPPP_PERSONALITY,
    INTEGER_PERSONALITY,
    Personality,
)
from repro.workloads.kernels import (
    EIGHTQ_SOURCE,
    LLOOP01_SOURCE,
    MATRIX25A_SOURCE,
    NASA1_SOURCE,
    NASA7_SOURCE,
    TOMCATV_SOURCE,
)
from repro.workloads.kernels.extra import CRC32_SOURCE, FIB_SOURCE, QSORT_SOURCE


@dataclass(frozen=True)
class _Spec:
    """How to synthesise one workload."""

    name: str
    kind: str  # "kernel", "pool", "fp_block", "static"
    personality: Personality
    text_bytes: int  # target static size (0 = whatever the kernel needs)
    kernel: str | None = None
    executable: bool = True
    pool_functions: int = 64
    pool_iterations: int = 1500
    fp_block_words: int = 460
    fp_iterations: int = 260


#: Paper text sizes (Figure 5); 36766 rounded up to a word boundary.
_SPECS: dict[str, _Spec] = {
    spec.name: spec
    for spec in (
        # ---- Figure 5 compression corpus (static byte realism) --------
        _Spec("tex", "static", INTEGER_PERSONALITY, 53172, executable=False),
        _Spec("pswarp", "static", INTEGER_PERSONALITY, 61364, executable=False),
        _Spec("yacc", "static", INTEGER_PERSONALITY, 49076, executable=False),
        _Spec("who", "static", INTEGER_PERSONALITY, 65940, executable=False),
        _Spec("xlisp", "static", INTEGER_PERSONALITY, 65940, executable=False),
        _Spec("spim", "static", INTEGER_PERSONALITY, 147360, executable=False),
        # ---- executable kernels (also in the Figure 5 corpus) ---------
        _Spec("eightq", "kernel", INTEGER_PERSONALITY, 4020, kernel=EIGHTQ_SOURCE),
        _Spec("matrix25a", "kernel", FP_PERSONALITY, 36768, kernel=MATRIX25A_SOURCE),
        _Spec("lloop01", "kernel", FP_PERSONALITY, 4020, kernel=LLOOP01_SOURCE),
        # ---- executable simulation programs ---------------------------
        _Spec("espresso", "pool", INTEGER_PERSONALITY, 176052),
        _Spec("nasa7", "kernel", FP_PERSONALITY, 28672, kernel=NASA7_SOURCE),
        _Spec("nasa1", "kernel", FP_PERSONALITY, 20480, kernel=NASA1_SOURCE),
        _Spec("tomcatv", "kernel", FP_PERSONALITY, 24576, kernel=TOMCATV_SOURCE),
        _Spec("fpppp", "fp_block", FPPPP_PERSONALITY, 61440),
        # ---- extra validation workloads (not in the paper's tables) ----
        _Spec("qsort", "kernel", INTEGER_PERSONALITY, 8192, kernel=QSORT_SOURCE),
        _Spec("crc32", "kernel", INTEGER_PERSONALITY, 4096, kernel=CRC32_SOURCE),
        _Spec("fib", "kernel", INTEGER_PERSONALITY, 4096, kernel=FIB_SOURCE),
    )
}

#: The ten programs of Figure 5, in the paper's order.
FIGURE5_PROGRAMS: tuple[str, ...] = (
    "tex",
    "pswarp",
    "yacc",
    "who",
    "eightq",
    "matrix25a",
    "lloop01",
    "xlisp",
    "espresso",
    "spim",
)

#: Programs driving the performance tables (1-13) and Figure 9.
SIMULATION_PROGRAMS: tuple[str, ...] = (
    "nasa7",
    "matrix25a",
    "fpppp",
    "espresso",
    "nasa1",
    "eightq",
    "tomcatv",
    "lloop01",
)


@dataclass(frozen=True)
class Workload:
    """A ready-to-use benchmark program.

    Attributes:
        name: Suite name (e.g. ``"espresso"``).
        program: The assembled image.
        executable: Whether :meth:`run` is meaningful (the purely static
            Figure 5 corpus programs never execute).
    """

    name: str
    program: AssembledProgram
    executable: bool

    @property
    def text(self) -> bytes:
        """Text-segment bytes (the compression corpus unit)."""
        return self.program.text

    @property
    def size(self) -> int:
        return self.program.size

    def run(self, max_instructions: int = 4_000_000) -> ExecutionResult:
        """Execute and return the (cached) trace and statistics.

        Suite workloads share a process-wide cache; ad-hoc workloads
        (user programs wrapped in a :class:`Workload`) memoise on the
        instance.
        """
        if not self.executable:
            raise ConfigurationError(f"workload {self.name!r} is compression-only")
        if self.name in _SPECS:
            return _run_cached(self.name, max_instructions)
        cached = getattr(self, "_adhoc_result", None)
        if cached is None or cached[0] != max_instructions:
            result = Machine(self.program).run(max_instructions=max_instructions)
            cached = (max_instructions, result)
            object.__setattr__(self, "_adhoc_result", cached)
        return cached[1]


def _build_source(spec: _Spec) -> str:
    generator = CodeGenerator(spec.name, spec.personality)
    if spec.kind == "static":
        return generator.static_program(spec.text_bytes)
    if spec.kind == "kernel":
        return generator.static_program(spec.text_bytes, prologue=spec.kernel)
    if spec.kind == "pool":
        return generator.pool_program(
            functions=spec.pool_functions,
            iterations=spec.pool_iterations,
            static_pad_bytes=spec.text_bytes,
        )
    if spec.kind == "fp_block":
        return generator.straightline_fp_program(
            block_words=spec.fp_block_words,
            iterations=spec.fp_iterations,
            static_pad_bytes=spec.text_bytes,
        )
    raise ConfigurationError(f"unknown workload kind {spec.kind!r}")


@lru_cache(maxsize=None)
def load(name: str) -> Workload:
    """Load a workload by suite name (deterministic and cached).

    Assembly dominates a cold process start (the ten-program corpus takes
    ~2 s), so the assembled image is also memoised in the on-disk
    artifact cache, content-addressed by the generated source text.
    """
    from repro.core import artifacts

    spec = _SPECS.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown workload {name!r}; choose from {sorted(_SPECS)}"
        )
    source = _build_source(spec)
    program = artifacts.get_cache().get_or_compute(
        "assembly",
        lambda: Assembler().assemble(source),
        name,
        artifacts.fingerprint_bytes(source.encode()),
    )
    return Workload(name=name, program=program, executable=spec.executable)


@lru_cache(maxsize=None)
def _run_cached(name: str, max_instructions: int) -> ExecutionResult:
    workload = load(name)
    return Machine(workload.program).run(max_instructions=max_instructions)


def load_figure5_corpus() -> dict[str, bytes]:
    """Text segments of the ten Figure 5 programs, in paper order."""
    return {name: load(name).text for name in FIGURE5_PROGRAMS}


def available_workloads() -> tuple[str, ...]:
    """All workload names the suite can build."""
    return tuple(sorted(_SPECS))
