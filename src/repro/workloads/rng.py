"""Deterministic random sources for workload generation.

Every synthetic program is generated from a seed derived from its name, so
the whole experiment suite is bit-for-bit reproducible run to run — the
analogue of the paper using one fixed set of compiled binaries.
"""

from __future__ import annotations

import hashlib
import random


def seed_for(name: str) -> int:
    """Stable 64-bit seed derived from a workload name."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def rng_for(name: str) -> random.Random:
    """A :class:`random.Random` seeded stably from ``name``."""
    return random.Random(seed_for(name))


def weighted_choice(rng: random.Random, weights: dict[str, float]) -> str:
    """Pick a key of ``weights`` with probability proportional to value."""
    items = list(weights.items())
    total = sum(weight for _, weight in items)
    point = rng.random() * total
    for key, weight in items:
        point -= weight
        if point <= 0:
            return key
    return items[-1][0]
