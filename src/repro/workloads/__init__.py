"""The benchmark workload suite.

The paper compresses ten DECstation 3100 programs (Figure 5) and drives its
performance simulations with pixie traces of workstation benchmarks
(NASA7, matrix25A, fpppp, espresso, NASA1, eightq, tomcatv, lloopO1).
Real 1992 MIPS binaries and traces are unavailable, so this package builds
the closest synthetic equivalents from scratch:

* hand-written MIPS-I assembly kernels for the small numeric programs
  (eight queens, 25x25 matrix multiply, Livermore loop 1, NASA kernels,
  tomcatv-style relaxation);
* a deterministic synthetic code generator that emits realistic R2000
  machine code for the large irregular programs (espresso-, spim-,
  xlisp-like) and for the static Figure 5 corpus at the paper's exact
  text-segment sizes;
* an fpppp-like program whose signature — an enormous straight-line basic
  block full of addressing constants — reproduces both its cache behaviour
  and its status as the paper's compression outlier.

Everything is reproducible: same name, same bytes, same trace.
"""

from repro.workloads.suite import (
    FIGURE5_PROGRAMS,
    SIMULATION_PROGRAMS,
    Workload,
    load,
    load_figure5_corpus,
)

__all__ = [
    "FIGURE5_PROGRAMS",
    "SIMULATION_PROGRAMS",
    "Workload",
    "load",
    "load_figure5_corpus",
]
