"""Deterministic synthetic MIPS code generation.

Real 1992 DECstation binaries are unavailable, so the suite synthesises
programs whose *encoded byte statistics* and *cache behaviour* play the
same role (see DESIGN.md for the substitution argument).  Three generators
are provided:

* :meth:`CodeGenerator.static_program` — non-executing but fully
  assemblable code at an exact text-segment size, used for the Figure 5
  compression corpus.  Instruction mix, register skew, and immediate
  distributions follow a per-program :class:`Personality`.
* :meth:`CodeGenerator.pool_program` — an *executable* program built from
  a pool of generated functions invoked data-dependently through a jump
  table by an in-program linear-congruential generator.  This reproduces
  the irregular instruction working set of pointer-chasing programs like
  espresso.
* :meth:`CodeGenerator.straightline_fp_program` — an *executable* program
  whose inner loop is one enormous straight-line FP basic block stuffed
  with addressing constants: fpppp's signature, responsible both for its
  cache thrashing below 2 KB and for being the preselected code's outlier.

All output is plain assembly for :class:`repro.isa.assembler.Assembler`;
every generated line encodes to exactly one machine word, so byte sizes
are exact by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.workloads.rng import rng_for, weighted_choice

#: Registers a generated leaf body may scribble on freely.  $t6 is
#: reserved as the masked memory pointer, $t8/$t9 as worker bookkeeping.
_SCRATCH = ["$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t7", "$v0", "$v1", "$a1", "$a2", "$a3"]

#: Even-numbered FP registers usable for doubles.
_FP_EVEN = [f"$f{n}" for n in range(0, 30, 2)]


@dataclass(frozen=True)
class Personality:
    """Statistical fingerprint of one synthetic program.

    Attributes:
        mix: Relative weights of instruction categories in function
            bodies (keys: alu3, alui, load, store, shift, lui_pair,
            branch, call, multdiv, fp).
        fp_double_fraction: Among FP operations, how many are double
            precision.
        wild_constants: Fraction of lui/ori constant pairs drawn uniformly
            from the full 32-bit space rather than from data-segment-like
            addresses.  High values reproduce fpppp's unusual byte mix.
        small_immediate_bias: Probability an ALU immediate is small
            (0-64); the rest are drawn up to 16 bits.
        mean_function_words: Average generated function length in words.
    """

    mix: dict[str, float] = field(
        default_factory=lambda: {
            "alu3": 22.0,
            "alui": 18.0,
            "load": 20.0,
            "store": 9.0,
            "shift": 7.0,
            "lui_pair": 4.0,
            "branch": 11.0,
            "call": 4.0,
            "multdiv": 1.0,
            "fp": 4.0,
        }
    )
    fp_double_fraction: float = 0.6
    wild_constants: float = 0.05
    small_immediate_bias: float = 0.75
    mean_function_words: int = 120


#: Integer-heavy system code (yacc, who, espresso, spim, xlisp, tex).
INTEGER_PERSONALITY = Personality()

#: FP-heavy scientific code (matrix25A, NASA kernels, tomcatv).
FP_PERSONALITY = Personality(
    mix={
        "alu3": 14.0,
        "alui": 16.0,
        "load": 12.0,
        "store": 6.0,
        "shift": 5.0,
        "lui_pair": 3.0,
        "branch": 8.0,
        "call": 2.0,
        "multdiv": 1.0,
        "fp": 33.0,
    },
    mean_function_words=220,
)

#: fpppp-like: FP plus a flood of unusual addressing constants.
FPPPP_PERSONALITY = Personality(
    mix={
        "alu3": 10.0,
        "alui": 12.0,
        "load": 12.0,
        "store": 7.0,
        "shift": 3.0,
        "lui_pair": 16.0,
        "branch": 4.0,
        "call": 1.0,
        "multdiv": 0.5,
        "fp": 34.5,
    },
    wild_constants=0.85,
    mean_function_words=600,
)


class CodeGenerator:
    """Seeded generator of synthetic MIPS assembly.

    Args:
        name: Workload name; seeds all randomness.
        personality: Statistical fingerprint to imitate.
    """

    def __init__(self, name: str, personality: Personality = INTEGER_PERSONALITY) -> None:
        self.name = name
        self.personality = personality
        self.rng: random.Random = rng_for(name)

    # ==================================================================
    # Static (non-executing) programs — the Figure 5 corpus
    # ==================================================================

    def static_program(self, text_bytes: int, prologue: str | None = None) -> str:
        """Generate assemblable code of exactly ``text_bytes`` bytes.

        Args:
            text_bytes: Target text-segment size; rounded up to a word.
            prologue: Optional hand-written assembly to place first (e.g.
                a real kernel); generated library functions fill the rest.
        """
        target_words = (text_bytes + 3) // 4
        lines: list[str] = []
        words = 0
        if prologue:
            lines.append(prologue)
            words += _count_words(prologue)
        # The prologue may have left the assembler in .data; the generated
        # library functions always belong to the text segment.
        lines.append(".text")
        stem = "".join(ch if ch.isalnum() else "_" for ch in self.name)
        function_names = [f"lib_{stem}_{index}" for index in range(4096)]
        index = 0
        while words < target_words:
            budget = target_words - words
            if budget < 16:
                lines.append("\n".join(["    nop"] * budget))
                words += budget
                break
            # Calls may only target functions that actually get emitted,
            # i.e. this one and its predecessors.
            body = self._static_function(
                function_names[index], function_names[: index + 1], budget
            )
            lines.append(body)
            words += _count_words(body)
            index += 1
        return "\n".join(lines)

    def _static_function(self, name: str, pool: list[str], budget: int) -> str:
        """One library function of exactly min(budget, ~gauss(mean)) words.

        Bodies are assembled from a Zipf-reused pool of concrete
        instruction *phrases* rather than independent random instructions:
        compiled code repeats its idioms (the same spill, the same
        compare-and-mask, the same address computation) and that sequence-
        level redundancy is exactly what dictionary compressors like Unix
        ``compress`` feed on.  Branches and calls are generated fresh
        because their offsets are position-dependent, as in real code.
        """
        rng = self.rng
        mean = self.personality.mean_function_words
        size = min(budget, max(16, int(rng.gauss(mean, mean / 2))))
        out: list[str] = [f"{name}:"]
        frame = rng.choice([24, 32, 32, 40])
        out.append(f"    addiu $sp, $sp, -{frame}")
        out.append(f"    sw $ra, {frame - 4}($sp)")
        # 2 prologue words emitted; reserve 4 words for the epilogue.
        body_words = size - 6
        # Pre-place local labels so branches always have a target.
        label_slots = sorted(
            rng.sample(range(max(1, body_words)), k=max(1, body_words // 12))
        )
        labels = [f"{name}_L{j}" for j in range(len(label_slots))]
        phrases, weights = self._phrase_pool()
        wild = self.personality.wild_constants
        slot_cursor = 0
        position = 0
        while position < body_words:
            while slot_cursor < len(label_slots) and label_slots[slot_cursor] <= position:
                out.append(f"{labels[slot_cursor]}:")
                slot_cursor += 1
            remaining = body_words - position
            roll = rng.random()
            if roll < 0.085 and remaining >= 2:
                label = rng.choice(labels)
                if rng.random() < 0.5:
                    branch = f"{rng.choice(['beq', 'bne'])} {self._reg()}, {self._reg()}, {label}"
                else:
                    branch = f"{rng.choice(['blez', 'bgtz', 'bltz', 'bgez'])} {self._reg()}, {label}"
                out.append(f"    {branch}")
                out.append(f"    {self._delay_slot() or 'nop'}")
                position += 2
            elif roll < 0.115 and remaining >= 2:
                target = rng.choice(pool[: max(1, len(pool) // 2)])
                out.append(f"    jal {target}")
                out.append(f"    {self._delay_slot() or 'nop'}")
                position += 2
            elif roll < 0.115 + wild * 0.25 and remaining >= 2:
                # Fresh (never reused) address constants — fpppp's flood.
                register = self._reg()
                out.append(f"    lui {register}, {rng.randrange(1 << 16):#x}")
                out.append(f"    ori {register}, {register}, {rng.randrange(1 << 16):#x}")
                position += 2
            else:
                phrase = rng.choices(phrases, weights)[0]
                for instruction in phrase[:remaining]:
                    out.append(f"    {instruction}")
                position += min(len(phrase), remaining)
        for j in range(slot_cursor, len(labels)):
            out.append(f"{labels[j]}:")
        out.append(f"    lw $ra, {frame - 4}($sp)")
        out.append(f"    addiu $sp, $sp, {frame}")
        out.append("    jr $ra")
        out.append("    nop")
        return "\n".join(out)

    def _phrase_pool(self) -> tuple[list[list[str]], list[float]]:
        """The personality's concrete phrase pool with Zipf reuse weights."""
        cached = getattr(self, "_phrases_cache", None)
        if cached is None:
            phrases = [self._make_phrase() for _ in range(560)]
            weights = [1.0 / (rank + 24) for rank in range(len(phrases))]
            cached = (phrases, weights)
            self._phrases_cache = cached
        return cached

    def _make_phrase(self) -> list[str]:
        """A short, fully concrete instruction idiom (no labels inside)."""
        rng = self.rng
        length = rng.choice([2, 3, 3, 4, 4, 4, 5, 5, 6, 8])
        phrase = []
        while len(phrase) < length:
            instruction, extra = self._static_instruction([], [], frame=24, phrase_mode=True)
            phrase.append(instruction)
            if extra:
                phrase.append(extra)
        return phrase[:length]

    def _static_instruction(
        self, labels: list[str], pool: list[str], frame: int, phrase_mode: bool = False
    ) -> tuple[str, str | None]:
        """One realistic instruction; second element is a forced follow-up
        (branch/call delay slots, lui/ori pairs).

        In ``phrase_mode`` the position-dependent categories (branch,
        call) are excluded, so the result is a reusable concrete idiom.
        """
        rng = self.rng
        p = self.personality
        category = weighted_choice(rng, p.mix)
        while phrase_mode and category in ("branch", "call"):
            category = weighted_choice(rng, p.mix)
        if category == "alu3":
            op = rng.choice(
                ["addu"] * 5 + ["or", "subu", "and", "slt", "xor", "sltu", "or", "addu"]
            )
            destination = self._reg()
            source = destination if rng.random() < 0.35 else self._reg()
            return f"{op} {destination}, {source}, {self._reg()}", None
        if category == "alui":
            op = rng.choice(["addiu"] * 5 + ["slti", "andi", "ori"])
            destination = self._reg()
            source = destination if rng.random() < 0.4 else self._reg()
            return f"{op} {destination}, {source}, {self._immediate(op)}", None
        if category == "load":
            op = rng.choice(["lw"] * 6 + ["lbu", "lb", "lhu"])
            return f"{op} {self._reg()}, {self._offset(frame)}({self._base_reg()})", None
        if category == "store":
            op = rng.choice(["sw"] * 5 + ["sb", "sh"])
            return f"{op} {self._reg()}, {self._offset(frame)}({self._base_reg()})", None
        if category == "shift":
            op = rng.choice(["sll", "sll", "sll", "srl", "sra"])
            amount = rng.choice([2, 2, 2, 3, 3, 1, 4, 16])
            return f"{op} {self._reg()}, {self._reg()}, {amount}", None
        if category == "lui_pair":
            register = self._reg()
            high, low = self._address_constant()
            return f"lui {register}, {high:#x}", f"ori {register}, {register}, {low:#x}"
        if category == "branch":
            label = rng.choice(labels)
            kind = rng.random()
            if kind < 0.5:
                branch = f"{rng.choice(['beq', 'bne'])} {self._reg()}, {self._reg()}, {label}"
            else:
                branch = f"{rng.choice(['blez', 'bgtz', 'bltz', 'bgez'])} {self._reg()}, {label}"
            return branch, self._delay_slot()
        if category == "call":
            target = rng.choice(pool[: max(1, len(pool) // 2)])
            return f"jal {target}", self._delay_slot()
        if category == "multdiv":
            op = rng.choice(["mult", "mult", "multu", "div", "divu"])
            first = f"{op} {self._reg()}, {self._reg()}"
            return first, f"{rng.choice(['mflo', 'mfhi'])} {self._reg()}"
        # FP.
        if rng.random() < 0.45:
            op = rng.choice(["lwc1", "lwc1", "swc1"])
            return f"{op} $f{rng.randrange(32)}, {self._offset(frame)}({self._base_reg()})", None
        suffix = "d" if rng.random() < self.personality.fp_double_fraction else "s"
        registers = _FP_EVEN if suffix == "d" else [f"$f{n}" for n in range(32)]
        op = rng.choice(["add", "add", "mul", "mul", "sub", "div"])
        fd, fs, ft = (rng.choice(registers) for _ in range(3))
        return f"{op}.{suffix} {fd}, {fs}, {ft}", None

    # ------------------------------------------------------------------
    # Operand distributions
    # ------------------------------------------------------------------

    #: Compiler register pressure concentrates on a small hot palette.
    _REG_NAMES = (
        ["$v0"] * 20 + ["$t0"] * 17 + ["$zero"] * 16 + ["$a0"] * 13 + ["$t1"] * 10
        + ["$v1"] * 6 + ["$a1"] * 5 + ["$s0"] * 4 + ["$t2"] * 3 + ["$s1"] * 2
        + ["$sp"] * 2 + ["$t3", "$a2", "$gp", "$ra"]
    )

    def _reg(self) -> str:
        """A register, skewed the way compiled code is."""
        return self.rng.choice(self._REG_NAMES)

    def _base_reg(self) -> str:
        roll = self.rng.random()
        if roll < 0.35:
            return "$sp"
        if roll < 0.5:
            return "$gp"
        return self._reg()

    def _offset(self, frame: int) -> int:
        rng = self.rng
        roll = rng.random()
        if roll < 0.70:
            return 4 * rng.randrange(0, max(1, frame // 4))
        if roll < 0.92:
            return rng.choice([0, 0, 4, 4, 8, 8, 12, 16, 16, 20, 24, 32, 40, 48, 64])
        return rng.choice([-4, -8]) if roll < 0.95 else 4 * rng.randrange(0, 512)

    def _immediate(self, op: str) -> int:
        rng = self.rng
        if op in ("andi", "ori"):
            return rng.choice([1, 1, 3, 7, 0xF, 0xFF, 0xFF, 0xFFFF, 0x7F])
        if rng.random() < self.personality.small_immediate_bias:
            return rng.choice([1, 1, 1, -1, -1, 2, 4, 4, 8, -4, -8, 16, 24, 32])
        return rng.randrange(-0x8000, 0x8000)

    def _address_constant(self) -> tuple[int, int]:
        rng = self.rng
        if rng.random() < self.personality.wild_constants:
            return rng.randrange(1 << 16), rng.randrange(1 << 16)
        # Data-segment-like addresses: high half near 0x0040, low varied.
        return rng.choice([0x0040, 0x0041, 0x0040, 0x0044, 0x0000]), rng.randrange(1 << 16)

    def _delay_slot(self) -> str | None:
        """Branch delay slot: often a useful ALU op, sometimes a nop."""
        rng = self.rng
        if rng.random() < 0.4:
            return "nop"
        return f"addiu {self._reg()}, {self._reg()}, {self._immediate('addiu')}"

    # ==================================================================
    # Executable pool programs — espresso-like irregular code
    # ==================================================================

    def pool_program(
        self,
        functions: int = 48,
        iterations: int = 3000,
        body_loops: int = 2,
        body_words: int = 120,
        static_pad_bytes: int | None = None,
    ) -> str:
        """An executable program with a data-driven irregular working set.

        A driver loop runs ``iterations`` times; each pass advances an
        in-program LCG and calls one of ``functions`` generated worker
        functions through a jump table.  Workers loop ``body_loops`` times
        over a generated ALU/memory body of about ``body_words`` words on
        a shared scratch buffer, so the dynamic instruction working set
        follows the LCG — large and irregular, like espresso's.

        Args:
            static_pad_bytes: If given, append never-executed library code
                until the text segment reaches this size.
        """
        if not functions or functions & (functions - 1):
            raise ValueError(f"functions must be a power of two, got {functions}")
        out: list[str] = [".text"]
        out.append(
            f"""
main:
    lui $s0, {0x40:#x}          # workbuf (data base)
    ori $s0, $s0, 0x0000
    li  $s1, 12345              # LCG state
    li  $s2, {iterations}       # driver iterations
    lui $s3, {0x40:#x}          # jump table base
    ori $s3, $s3, 0x1000
driver:
    lui $t0, 0x41C6             # LCG: s1 = s1 * 1103515245 + 12345
    ori $t0, $t0, 0x4E6D
    mult $s1, $t0
    mflo $s1
    addiu $s1, $s1, 12345
    srl $t1, $s1, 8             # pick a worker
    andi $t1, $t1, {functions - 1:#x}
    sll $t1, $t1, 2
    addu $t2, $s3, $t1
    lw $t3, 0($t2)
    jalr $ra, $t3
    nop
    addiu $s2, $s2, -1
    bnez $s2, driver
    nop
    li $a0, 0
    li $v0, 10
    syscall
"""
        )
        for index in range(functions):
            out.append(self._worker_function(f"work{index}", body_loops, body_words))
        out.append(
            """
.data
workbuf: .space 4096
"""
        )
        table = "\n".join(f"    .word work{index}" for index in range(functions))
        out.append(".align 2\njumptable:\n" + table)
        source = "\n".join(out)
        if static_pad_bytes is not None:
            current = _count_words(source) * 4
            if static_pad_bytes > current:
                source += "\n" + self.static_program(static_pad_bytes - current)
        return source

    def _worker_function(self, name: str, body_loops: int, body_words: int) -> str:
        """One executable leaf worker: loops a generated safe body."""
        rng = self.rng
        out = [f"{name}:"]
        out.append("    lui $t8, 0x40")
        out.append("    ori $t8, $t8, 0x0000    # workbuf")
        out.append(f"    li $t9, {body_loops}")
        out.append(f"{name}_loop:")
        emitted = 0
        target = max(8, int(rng.gauss(body_words, body_words / 4)))
        while emitted < target:
            out.append(f"    {self._safe_body_instruction()}")
            emitted += 1
        out.append("    addiu $t9, $t9, -1")
        out.append(f"    bnez $t9, {name}_loop")
        out.append("    nop")
        out.append("    jr $ra")
        out.append("    nop")
        return "\n".join(out)

    def _safe_body_instruction(self) -> str:
        """An instruction that is always safe to execute in a worker body.

        Only scratch registers are written; memory accesses stay inside
        the 4 KB ``workbuf`` via an ``andi`` mask computed into $t6.
        """
        rng = self.rng
        roll = rng.random()
        scratch = _SCRATCH
        if roll < 0.30:
            op = rng.choice(["addu", "subu", "and", "or", "xor", "slt", "sltu"])
            return f"{op} {rng.choice(scratch)}, {rng.choice(scratch)}, {rng.choice(scratch)}"
        if roll < 0.50:
            op = rng.choice(["addiu", "addiu", "slti", "andi", "ori", "xori"])
            imm = rng.randrange(256) if op != "addiu" else rng.randrange(-128, 128)
            return f"{op} {rng.choice(scratch)}, {rng.choice(scratch)}, {imm}"
        if roll < 0.62:
            op = rng.choice(["sll", "srl", "sra"])
            return f"{op} {rng.choice(scratch)}, {rng.choice(scratch)}, {rng.randrange(1, 31)}"
        if roll < 0.74:
            # Masked load: t6 = (reg & 0xFFC); lw x, workbuf[t6].
            if rng.random() < 0.5:
                return f"andi $t6, {rng.choice(scratch)}, 0xFFC"
            return f"addu $t6, $t8, $t6"
        if roll < 0.86:
            return f"lw {rng.choice(scratch)}, 0($t6)" if rng.random() < 0.7 else f"sw {rng.choice(scratch)}, 0($t6)"
        if roll < 0.94:
            return f"lbu {rng.choice(scratch)}, {rng.randrange(0, 64)}($t8)"
        if roll < 0.97:
            return f"mult {rng.choice(scratch)}, {rng.choice(scratch)}"
        return f"mflo {rng.choice(scratch)}"

    # ==================================================================
    # Straight-line FP programs — fpppp-like
    # ==================================================================

    def straightline_fp_program(
        self,
        block_words: int = 420,
        iterations: int = 280,
        static_pad_bytes: int | None = None,
    ) -> str:
        """An executable program dominated by one giant FP basic block.

        The block is ``block_words`` instructions of straight-line double
        arithmetic and constant-address loads (fpppp's signature).  It runs
        ``iterations`` times.  A block larger than the instruction cache
        misses on every line every iteration; once the cache holds it, the
        miss rate collapses — exactly the fpppp cliff in Tables 3.
        """
        rng = self.rng
        out = [".text"]
        out.append(
            f"""
main:
    lui $s0, 0x40
    ori $s0, $s0, 0x0000      # constants array
    li  $s2, {iterations}
bigblock:
"""
        )
        # FP register pressure concentrates, as in compiled FORTRAN.
        fp_palette = ["$f0"] * 5 + ["$f2"] * 4 + ["$f4"] * 3 + ["$f6"] * 3 + [
            "$f8", "$f8", "$f10", "$f12", "$f14", "$f16", "$f20", "$f24"
        ]
        emitted = 0
        while emitted < block_words:
            roll = rng.random()
            if roll < 0.22:
                offset = 8 * rng.randrange(0, 60)
                out.append(f"    l.d {rng.choice(fp_palette)}, {offset}($s0)")
                emitted += 2
            elif roll < 0.30:
                offset = 8 * rng.randrange(120, 180)
                out.append(f"    s.d {rng.choice(fp_palette)}, {offset}($s0)")
                emitted += 2
            elif roll < 0.42:
                # Addressing constants: fpppp's flood of odd byte values
                # (a third wild, the rest ordinary data addresses).
                register = rng.choice(["$t0", "$t1", "$t2", "$t3"])
                if rng.random() < 0.35:
                    high, low = rng.randrange(1 << 16), rng.randrange(1 << 16)
                else:
                    high, low = rng.choice([0x0040, 0x0040, 0x0041, 0x0044]), rng.randrange(1 << 12)
                out.append(f"    lui {register}, {high:#x}")
                out.append(f"    ori {register}, {register}, {low:#x}")
                emitted += 2
            elif roll < 0.52:
                out.append(
                    rng.choice(
                        [
                            "    addu $t4, $t5, $t6",
                            f"    sll $t5, $t6, {rng.choice([2, 3])}",
                            "    addiu $t4, $t5, 8",
                        ]
                    )
                )
                emitted += 1
            else:
                op = rng.choice(["add.d", "add.d", "mul.d", "mul.d", "sub.d"])
                fd, fs, ft = (rng.choice(fp_palette) for _ in range(3))
                out.append(f"    {op} {fd}, {fs}, {ft}")
                emitted += 1
        out.append(
            """
    addiu $s2, $s2, -1
    bnez $s2, bigblock
    nop
    li $a0, 0
    li $v0, 10
    syscall
"""
        )
        out.append(".data\nfpconsts: .space 4096")
        source = "\n".join(out)
        if static_pad_bytes is not None:
            current = _count_words(source) * 4
            if static_pad_bytes > current:
                source += "\n" + self.static_program(static_pad_bytes - current)
        return source


def _count_words(source: str) -> int:
    """Machine words a source fragment assembles to (1 per instruction
    line; generated code avoids multi-word pseudo-instructions except the
    known two-word ones counted here)."""
    words = 0
    for raw in source.splitlines():
        line = raw.split("#", 1)[0].strip()
        while ":" in line and not line.startswith("."):
            line = line.partition(":")[2].strip()
        if not line or line.startswith("."):
            continue
        mnemonic = line.split()[0]
        if mnemonic in ("l.d", "s.d", "la", "blt", "bge", "bgt", "ble", "mul"):
            words += 2
        elif mnemonic == "li":
            operand = line.split(",")[-1].strip()
            try:
                value = int(operand, 0)
            except ValueError:
                value = 0
            words += 1 if -0x8000 <= value <= 0xFFFF else 2
        else:
            words += 1
    return words
