"""Exception hierarchy for the CCRP reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class EncodingError(ReproError):
    """An instruction could not be encoded into its binary form."""


class DecodingError(ReproError):
    """A 32-bit word could not be decoded into a known instruction."""


class AssemblerError(ReproError):
    """Assembly source was malformed (bad mnemonic, operand, or label)."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class ExecutionError(ReproError):
    """The functional simulator hit an unrecoverable condition."""


class CompressionError(ReproError):
    """A codec was misused or produced an invalid stream."""


class LATError(ReproError):
    """A Line Address Table constraint was violated."""


class ConfigurationError(ReproError):
    """A system configuration parameter is out of its supported range."""


class ProtocolError(ReproError):
    """A service frame violated the wire protocol.

    Raised by :mod:`repro.service.protocol` for a bad magic number or
    version, a length field past the frame limits, a connection closed
    mid-frame, or an unparsable JSON header.  Protocol errors are never
    retried *on the same connection*: the peer's byte stream can no
    longer be trusted, so the connection is closed.  A resilient client
    may reconnect and re-send an idempotent request on a fresh stream
    (:class:`~repro.service.client.ServiceClient` with ``retries > 0``
    does exactly that).
    """


class ServiceError(ReproError):
    """An error response from (or a failed exchange with) the service.

    Attributes:
        code: Machine-readable error code (e.g. ``"overloaded"``,
            ``"bad_request"``, ``"worker_crash"``, ``"shutting_down"``,
            ``"job_failed"``, ``"deadline_exceeded"``, ``"too_large"``,
            ``"timeout"``, ``"unavailable"``, ``"connection_lost"``).
        failure: The serialised :class:`~repro.core.sweep.FailureReport`
            dict attached to job failures, when the server captured one.
        op: The request op the client was attempting, when known (set by
            the client's retry layer when it wraps transport errors).
        address: The service address string the client was talking to.
        attempts: How many attempts the client made before giving up.
    """

    def __init__(
        self,
        message: str,
        code: str = "internal",
        failure: dict | None = None,
        op: str | None = None,
        address: str | None = None,
        attempts: int | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.failure = failure
        self.op = op
        self.address = address
        self.attempts = attempts


class IntegrityError(ReproError):
    """A stored line failed its integrity check (corrupted instruction memory).

    Raised by the refill path under the ``strict`` integrity policy when a
    fetched compressed block does not match its per-line CRC.
    """

    def __init__(self, message: str, line_number: int | None = None) -> None:
        super().__init__(message)
        self.line_number = line_number
