"""Bus-width sensitivity (paper Sections 3.4 and 5).

"A two byte per cycle decoder can provide adequate performance to keep up
with a 32-bit memory bus, however if 64 and 128-bit busses become common
in embedded designs the cost of an adequate decoder will grow rapidly."

This experiment quantifies that warning: for each bus width (32/64/128
bits over the same burst-EPROM array) and each decoder rate (2/4/8 bytes
per cycle), the CCRP's relative execution time.  A wider bus speeds the
*baseline* refill linearly, so the compressed machine must scale its
decoder to match — the diagonal of the table is flat, everything below
it degrades.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ccrp.decoder import DecoderModel
from repro.core.config import SystemConfig
from repro.core.artifacts import get_study
from repro.experiments.formats import render_table
from repro.memsys.models import BURST_EPROM

#: Bus widths in bytes (32-, 64-, 128-bit buses).
BUS_WIDTHS = (4, 8, 16)

#: Decoder output rates in bytes per cycle.
DECODER_RATES = (2, 4, 8)


@dataclass(frozen=True)
class BusWidthRow:
    program: str
    bus_bytes: int
    baseline_refill_cycles: int
    relative_performance: dict[int, float]  # decoder rate -> rel time


@dataclass(frozen=True)
class BusWidthResult:
    rows: tuple[BusWidthRow, ...]

    def render(self) -> str:
        return render_table(
            "Bus-width sensitivity (Burst EPROM array, 1 KB cache)",
            ("Program", "Bus", "Std refill")
            + tuple(f"{rate} B/cyc decoder" for rate in DECODER_RATES),
            [
                (
                    row.program,
                    f"{row.bus_bytes * 8}-bit",
                    f"{row.baseline_refill_cycles} cyc",
                )
                + tuple(row.relative_performance[rate] for rate in DECODER_RATES)
                for row in self.rows
            ],
        ) + (
            "\n\nWider buses cut the standard machine's refill; the CCRP must"
            "\nscale its decoder with the bus to stay competitive (paper 3.4/5)."
        )

    def row_for(self, program: str, bus_bytes: int) -> BusWidthRow:
        for row in self.rows:
            if row.program == program and row.bus_bytes == bus_bytes:
                return row
        raise KeyError((program, bus_bytes))


def run_bus_width(
    programs: tuple[str, ...] = ("espresso", "nasa7", "fpppp"),
    cache_bytes: int = 1024,
) -> BusWidthResult:
    """Sweep bus width x decoder rate over the given programs."""
    rows = []
    for program in programs:
        study = get_study(program)
        for bus_bytes in BUS_WIDTHS:
            memory = BURST_EPROM.with_bus_bytes(bus_bytes)
            relative = {}
            for rate in DECODER_RATES:
                config = SystemConfig(
                    cache_bytes=cache_bytes,
                    memory=memory,
                    decoder=DecoderModel(bytes_per_cycle=rate),
                )
                relative[rate] = study.metrics(config).relative_execution_time
            rows.append(
                BusWidthRow(
                    program=program,
                    bus_bytes=bus_bytes,
                    baseline_refill_cycles=memory.bytes_read_cycles(32),
                    relative_performance=relative,
                )
            )
    return BusWidthResult(rows=tuple(rows))
