"""Plain-text table rendering for experiment output.

The experiment modules return structured rows; these helpers turn them
into the fixed-width tables printed by the CLI, benchmarks, and
EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render rows as a fixed-width text table with a title line."""
    columns = [
        [str(header)] + [_format_cell(row[index]) for row in rows]
        for index, header in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(
                _format_cell(value).rjust(width) if _is_numeric(value) else
                _format_cell(value).ljust(width)
                for value, width in zip(row, widths)
            )
        )
    return "\n".join(lines)


def _is_numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def percent(value: float, digits: int = 2) -> str:
    """Format a 0-1 fraction the way the paper prints it (``5.13%``)."""
    return f"{100 * value:.{digits}f}%"


def ascii_scatter(
    points: Sequence[tuple[float, float, str]],
    width: int = 72,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A coarse ASCII scatter plot: (x, y, marker-character) points."""
    if not points:
        return "(no data)"
    xs = [point[0] for point in points]
    ys = [point[1] for point in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        column = int((x - x_low) / x_span * (width - 1))
        row = height - 1 - int((y - y_low) / y_span * (height - 1))
        grid[row][column] = marker[0]
    lines = [f"{y_label}  [{y_low:.3f} .. {y_high:.3f}]"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}  [{x_low:.4f} .. {x_high:.4f}]")
    return "\n".join(lines)
