"""Dense-ISA vs CCRP comparison (the Section 1 alternative, quantified).

For each Figure 5 corpus program: the size a Thumb-style 16/32-bit
re-encoding would achieve, side by side with the CCRP's preselected-code
ratio (including LAT overhead).  The trade the paper argues is visible in
the numbers: the dense ISA needs no refill machinery but a whole new
toolchain and pipeline; the CCRP keeps the stock ISA and pays 3.125 %
LAT plus refill time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ccrp.compressor import ProgramCompressor
from repro.core.standard import standard_code
from repro.experiments.formats import percent, render_table
from repro.isa.dense import analyze_dense_encoding
from repro.workloads.suite import FIGURE5_PROGRAMS, load_figure5_corpus


@dataclass(frozen=True)
class DenseComparisonRow:
    program: str
    original_bytes: int
    dense_fraction: float  # instructions expressible in 16 bits
    dense_ratio: float  # dense-ISA size / original
    ccrp_ratio: float  # CCRP stored size incl. LAT / original


@dataclass(frozen=True)
class DenseISAResult:
    rows: tuple[DenseComparisonRow, ...]
    weighted_dense: float
    weighted_ccrp: float

    def render(self) -> str:
        table = render_table(
            "Dense-ISA alternative vs CCRP (size as % of original)",
            ("Program", "Bytes", "16-bit-able", "Dense ISA", "CCRP (incl. LAT)"),
            [
                (
                    row.program,
                    row.original_bytes,
                    percent(row.dense_fraction, 1),
                    percent(row.dense_ratio, 1),
                    percent(row.ccrp_ratio, 1),
                )
                for row in self.rows
            ]
            + [
                (
                    "Weighted Avg",
                    sum(row.original_bytes for row in self.rows),
                    "",
                    percent(self.weighted_dense, 1),
                    percent(self.weighted_ccrp, 1),
                )
            ],
        )
        note = (
            "\nThe dense ISA buys its density with a new architecture and\n"
            "toolchain; the CCRP keeps stock MIPS binaries and pays the LAT\n"
            "and refill engine instead — the trade of paper Section 1."
        )
        return table + note


def run_dense_isa(programs: tuple[str, ...] = FIGURE5_PROGRAMS) -> DenseISAResult:
    """Compare the two density strategies over the corpus."""
    corpus = load_figure5_corpus()
    compressor = ProgramCompressor(standard_code())
    rows = []
    dense_total = 0
    ccrp_total = 0
    original_total = 0
    for name in programs:
        text = corpus[name]
        dense = analyze_dense_encoding(text)
        image = compressor.compress(text)
        rows.append(
            DenseComparisonRow(
                program=name,
                original_bytes=len(text),
                dense_fraction=dense.dense_fraction,
                dense_ratio=dense.size_ratio,
                ccrp_ratio=image.total_ratio_with_lat,
            )
        )
        dense_total += dense.dense_bytes
        ccrp_total += image.total_stored_bytes
        original_total += len(text)
    return DenseISAResult(
        rows=tuple(rows),
        weighted_dense=dense_total / original_total,
        weighted_ccrp=ccrp_total / original_total,
    )
