"""Fault study — corrupted-store survival across codecs and fault models.

The paper's block-bounded compression has a robustness corollary the
evaluation never measures: because each 32-byte line decompresses in
isolation, a defect in compressed ROM corrupts at most the line it lands
in, while a whole-file codec like Unix ``compress`` loses everything
from the defect onward (the decoder dictionary diverges and never
recovers).  This experiment measures that *blast radius* empirically,
alongside what the per-line CRC integrity layer of
:mod:`repro.faults.integrity` detects and what it costs to store.

Two tables come out:

* **Blast radius** — codec x fault model, aggregated over programs and
  trials: detection rate, mean/max corrupted lines, max corruption span,
  and how often corruption cascades to end-of-file.  ``raw`` is the
  uncompressed control arm (damage = bytes touched, no detection).
* **Refill-path integrity** — faults injected into the *serialised
  memory image* (compressed blocks or packed LAT entries) and replayed
  through the functional expanding cache under the ``detect`` and
  ``strict`` policies, proving the CLB/LAT walk surfaces both kinds of
  corruption at refill time.

Everything is driven by one seed; the same seed reproduces the tables
bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ccrp.compressor import ProgramCompressor
from repro.compression.histogram import byte_histogram
from repro.compression.huffman import HuffmanCode
from repro.core.standard import standard_code
from repro.errors import IntegrityError
from repro.experiments.formats import percent, render_table
from repro.faults.checker import (
    BlastReport,
    blast_baseline,
    blast_block_codec,
    blast_lzw,
    refill_survey,
)
from repro.faults.injector import FAULT_MODELS, FaultInjector
from repro.faults.integrity import INTEGRITY_BYTES_PER_LINE
from repro.workloads.suite import load

#: Small, fast corpus programs; the study aggregates across all of them.
DEFAULT_PROGRAMS = ("eightq", "who", "matrix25a")

#: Codec arms of the blast-radius table, in table order.
CODECS = ("raw", "traditional", "bounded", "preselected", "lzw")

#: Default trials per (codec, fault model, program) cell.
DEFAULT_TRIALS = 8

#: Memory-image regions the refill-path table injects into.
REFILL_TARGETS = ("code", "lat")


@dataclass(frozen=True)
class FaultRow:
    """Aggregated damage for one (codec, fault model) cell.

    Attributes:
        codec: Codec arm name.
        model: Fault-model name.
        trials: Faults injected (programs x trials each).
        detected: Trials the integrity layer caught (per-line CRC for
            block codecs, a stream error for LZW, never for ``raw``).
        mean_blast: Mean corrupted lines per trial.
        max_blast: Worst-case corrupted lines in any trial.
        max_span: Worst-case first-to-last corruption distance in lines.
        cascades: Trials where corruption reached the final line.
        crc_overhead: Stored integrity overhead as a fraction of the
            original program (0 where no per-line CRC scheme applies).
    """

    codec: str
    model: str
    trials: int
    detected: int
    mean_blast: float
    max_blast: int
    max_span: int
    cascades: int
    crc_overhead: float

    @property
    def detection_rate(self) -> float:
        return self.detected / self.trials if self.trials else 0.0


@dataclass(frozen=True)
class RefillRow:
    """Refill-path integrity results for one memory-image region.

    Attributes:
        target: Corrupted region (``code`` or ``lat``).
        trials: Faults injected.
        detected: Trials the ``detect`` policy flagged at refill time.
        decode_failures: Trials where the corrupt line additionally made
            the Huffman decoder itself refuse the stream.
        strict_traps: Trials where the ``strict`` policy raised
            :class:`~repro.errors.IntegrityError` (always a superset of
            nothing — strict re-runs the same faults).
    """

    target: str
    trials: int
    detected: int
    decode_failures: int
    strict_traps: int


@dataclass(frozen=True)
class FaultStudyResult:
    """Both tables plus the parameters that reproduce them."""

    seed: int
    trials_per_case: int
    programs: tuple[str, ...]
    rows: tuple[FaultRow, ...]
    refill_rows: tuple[RefillRow, ...]

    def render(self) -> str:
        blast_rows = [
            (
                row.codec,
                row.model,
                row.trials,
                percent(row.detection_rate, 1),
                round(row.mean_blast, 2),
                row.max_blast,
                row.max_span,
                row.cascades,
                percent(row.crc_overhead, 2) if row.crc_overhead else "-",
            )
            for row in self.rows
        ]
        blast = render_table(
            f"Fault study - blast radius by codec and fault model "
            f"(seed {self.seed}, {'+'.join(self.programs)})",
            (
                "Codec",
                "Fault",
                "Trials",
                "Detected",
                "Mean blast",
                "Max blast",
                "Max span",
                "Cascades",
                "CRC cost",
            ),
            blast_rows,
        )
        refill = render_table(
            "Refill-path integrity (faults in the stored memory image, "
            "preselected code)",
            ("Target", "Trials", "Detected", "Decoder refused", "Strict traps"),
            [
                (
                    row.target,
                    row.trials,
                    row.detected,
                    row.decode_failures,
                    row.strict_traps,
                )
                for row in self.refill_rows
            ],
        )
        return blast + "\n\n" + refill

    # ------------------------------------------------------------------
    # Property checks (the CLI smoke gate)
    # ------------------------------------------------------------------

    def violations(self) -> list[str]:
        """Paper-property violations, empty when the claims hold.

        The claims: single-bit and single-byte faults in any
        block-bounded store corrupt at most one line and are always
        caught by the per-line CRC; a burst never corrupts more lines
        than bytes it touches; LZW corruption is *not* line-bounded.
        """
        problems = []
        block_codecs = {"traditional", "bounded", "preselected"}
        lzw_spreads = False
        for row in self.rows:
            if row.codec in block_codecs and row.model in ("bit_flip", "byte"):
                if row.max_blast > 1:
                    problems.append(
                        f"{row.codec}/{row.model}: blast radius {row.max_blast} > 1 line"
                    )
                if row.detected < row.trials and row.model == "bit_flip":
                    problems.append(
                        f"{row.codec}/bit_flip: CRC-8 missed "
                        f"{row.trials - row.detected} single-bit faults"
                    )
            if row.codec in block_codecs and row.model == "burst":
                burst_bound = max(length for _, length in _burst_bounds(self.rows))
                if row.max_blast > burst_bound:
                    problems.append(
                        f"{row.codec}/burst: blast radius {row.max_blast} exceeds "
                        f"the {burst_bound}-line burst bound"
                    )
            if row.codec == "lzw" and row.max_span > 1:
                lzw_spreads = True
        if not lzw_spreads:
            problems.append("lzw: no trial spread beyond one line (cascade not shown)")
        return problems


def _burst_bounds(rows) -> list[tuple[str, int]]:
    """A burst of N bytes can straddle at most N stored blocks."""
    from repro.faults.injector import DEFAULT_BURST_BYTES

    return [("burst", DEFAULT_BURST_BYTES)]


def _codes_for(text: bytes) -> dict[str, HuffmanCode]:
    histogram = byte_histogram(text)
    return {
        "traditional": HuffmanCode.from_frequencies(histogram),
        "bounded": HuffmanCode.from_frequencies(histogram, max_length=16),
        "preselected": standard_code(),
    }


def _one_trial(
    codec: str, text: bytes, codes: dict[str, HuffmanCode], injector: FaultInjector, model: str
) -> BlastReport:
    if codec == "raw":
        return blast_baseline(text, injector, model)
    if codec == "lzw":
        return blast_lzw(text, injector, model)
    return blast_block_codec(
        codes[codec], text, injector, model, codec_name=codec
    )


def _refill_trials(
    programs: tuple[str, ...], trials: int, seed: int
) -> tuple[RefillRow, ...]:
    """Corrupt the serialised memory image and replay the refill walk."""
    rows = []
    for target_index, target in enumerate(REFILL_TARGETS):
        injector = FaultInjector(seed * 1009 + target_index)
        total = detected = decode_failures = strict_traps = 0
        for name in programs:
            workload = load(name)
            compressor = ProgramCompressor(standard_code(), integrity=True)
            image = compressor.compress(workload.text, text_base=workload.program.text_base)
            memory = image.memory_image()
            lat_bytes = image.lat.storage_bytes
            for _ in range(trials):
                total += 1
                if target == "lat":
                    region, record = injector.inject(memory[:lat_bytes], "bit_flip", target)
                    corrupted = region + memory[lat_bytes:]
                else:
                    region, record = injector.inject(memory[lat_bytes:], "bit_flip", target)
                    corrupted = memory[:lat_bytes] + region
                cache, errors = refill_survey(image, "detect", corrupted)
                if cache.integrity_events:
                    detected += 1
                if errors:
                    decode_failures += 1
                try:
                    refill_survey(image, "strict", corrupted)
                except IntegrityError:
                    strict_traps += 1
        rows.append(
            RefillRow(
                target=target,
                trials=total,
                detected=detected,
                decode_failures=decode_failures,
                strict_traps=strict_traps,
            )
        )
    return tuple(rows)


def run_fault_study(
    programs: tuple[str, ...] = DEFAULT_PROGRAMS,
    trials_per_case: int = DEFAULT_TRIALS,
    seed: int = 1992,
) -> FaultStudyResult:
    """Inject faults under every codec and fault model, measure the damage.

    One :class:`~repro.faults.injector.FaultInjector` per (codec, model)
    cell, deterministically seeded from ``seed`` and the cell's position,
    so any single row can be reproduced without re-running the rest.
    """
    texts = {name: load(name).text for name in programs}
    codes = {name: _codes_for(text) for name, text in texts.items()}
    rows = []
    for codec_index, codec in enumerate(CODECS):
        for model_index, model in enumerate(FAULT_MODELS):
            injector = FaultInjector(
                seed + 193 * codec_index + 7919 * model_index
            )
            reports: list[BlastReport] = []
            for name in programs:
                for _ in range(trials_per_case):
                    reports.append(
                        _one_trial(codec, texts[name], codes[name], injector, model)
                    )
            blasts = [report.blast_radius for report in reports]
            crc_overhead = 0.0
            if codec in ("traditional", "bounded", "preselected"):
                # One CRC byte per 32-byte line, averaged over the corpus
                # exactly the way Figure 5 weights its averages.
                total_lines = sum(report.line_count for report in reports) // max(
                    len(reports), 1
                )
                original = sum(len(texts[name]) for name in programs) / len(programs)
                crc_overhead = (
                    (total_lines * INTEGRITY_BYTES_PER_LINE) / original if original else 0.0
                )
            rows.append(
                FaultRow(
                    codec=codec,
                    model=model,
                    trials=len(reports),
                    detected=sum(report.detected for report in reports),
                    mean_blast=sum(blasts) / len(blasts) if blasts else 0.0,
                    max_blast=max(blasts, default=0),
                    max_span=max((report.span for report in reports), default=0),
                    cascades=sum(report.cascaded for report in reports),
                    crc_overhead=crc_overhead,
                )
            )
    refill_rows = _refill_trials(programs, trials_per_case, seed)
    return FaultStudyResult(
        seed=seed,
        trials_per_case=trials_per_case,
        programs=tuple(programs),
        rows=tuple(rows),
        refill_rows=refill_rows,
    )
