"""Tables 1-8 — relative performance, miss rate, and memory traffic
vs instruction-cache size.

One table per simulation program (NASA7, Matrix25A, fpppp, espresso,
NASA1, eightq, tomcatv, lloopO1), sweeping cache sizes 256 B - 4 KB under
the EPROM and Burst-EPROM memory models, with a 16-entry CLB and a 100 %
data-cache miss rate.  As in the paper, the Static-Column DRAM model
"produces quite similar results to the Burst EPROM model", so DRAM rows
are included only for the first program.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SystemConfig
from repro.core.artifacts import get_study
from repro.experiments.formats import percent, render_table
from repro.workloads.suite import SIMULATION_PROGRAMS

#: Paper sweep parameters.
CACHE_SIZES = (256, 512, 1024, 2048, 4096)
MEMORY_MODELS = ("eprom", "burst_eprom")

#: The one program that also gets DRAM rows (as in the paper).
DRAM_PROGRAM = "nasa7"


@dataclass(frozen=True)
class PerformanceRow:
    """One (memory model, cache size) row of a Tables 1-8 table."""

    program: str
    memory: str
    cache_bytes: int
    relative_performance: float
    miss_rate: float
    memory_traffic: float


@dataclass(frozen=True)
class ProgramTable:
    """One full paper table."""

    table_number: int
    program: str
    rows: tuple[PerformanceRow, ...]

    def render(self) -> str:
        return render_table(
            f"Table {self.table_number}: {self.program} - 16 entry CLB, "
            "100% Data Cache Miss Rate",
            ("Memory", "Cache Size", "Relative Performance", "Cache Miss Rate", "Memory Traffic"),
            [
                (
                    row.memory,
                    f"{row.cache_bytes} byte",
                    row.relative_performance,
                    percent(row.miss_rate),
                    percent(row.memory_traffic, 1),
                )
                for row in self.rows
            ],
        )


@dataclass(frozen=True)
class Tables1To8Result:
    tables: tuple[ProgramTable, ...]

    def render(self) -> str:
        return "\n\n".join(table.render() for table in self.tables)

    def table_for(self, program: str) -> ProgramTable:
        for table in self.tables:
            if table.program == program:
                return table
        raise KeyError(program)


def run_tables1_8(
    programs: tuple[str, ...] = SIMULATION_PROGRAMS,
    cache_sizes: tuple[int, ...] = CACHE_SIZES,
) -> Tables1To8Result:
    """Regenerate Tables 1-8 (optionally on a subset for quick runs)."""
    tables = []
    for number, program in enumerate(programs, start=1):
        study = get_study(program)
        memories = list(MEMORY_MODELS)
        if program == DRAM_PROGRAM:
            memories.append("sc_dram")
        rows = []
        for memory in memories:
            for cache_bytes in cache_sizes:
                report = study.metrics(
                    SystemConfig(cache_bytes=cache_bytes, memory=memory)
                )
                rows.append(
                    PerformanceRow(
                        program=program,
                        memory=memory,
                        cache_bytes=cache_bytes,
                        relative_performance=report.relative_execution_time,
                        miss_rate=report.miss_rate,
                        memory_traffic=report.memory_traffic_ratio,
                    )
                )
        tables.append(
            ProgramTable(table_number=number, program=program, rows=tuple(rows))
        )
    return Tables1To8Result(tables=tuple(tables))
