"""Tables 11-13 — effect of a data cache on CCRP benefit.

At a 1 KB instruction cache, the paper sweeps data-cache miss rates of
0 / 2 / 10 / 25 / 100 % for three programs (the analytic model of Section
4.2.4).  "As the data cache miss rate increases, the effect of the CCRP
on performance is reduced" — data stalls are identical on both machines,
so they dilute the relative difference toward 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.datacache import DataCacheModel
from repro.core.config import SystemConfig
from repro.core.artifacts import get_study
from repro.experiments.formats import percent, render_table
from repro.experiments.tables1_8 import MEMORY_MODELS

#: The paper's sweep points and programs.
DATA_MISS_RATES = (0.0, 0.02, 0.10, 0.25, 1.0)
DCACHE_PROGRAMS = ("nasa7", "espresso", "fpppp")
ICACHE_BYTES = 1024


@dataclass(frozen=True)
class DataCacheRow:
    program: str
    memory: str
    icache_bytes: int
    dcache_miss_rate: float
    relative_performance: float


@dataclass(frozen=True)
class DataCacheTable:
    table_number: int
    program: str
    rows: tuple[DataCacheRow, ...]

    def render(self) -> str:
        return render_table(
            f"Table {self.table_number}: {self.program} - Effect of Data Cache "
            "Miss Rate (16 entry CLB)",
            ("Memory", "Icache Size", "Dcache Miss Rate", "Relative Performance"),
            [
                (
                    row.memory,
                    f"{row.icache_bytes} byte",
                    percent(row.dcache_miss_rate, 0),
                    row.relative_performance,
                )
                for row in self.rows
            ],
        )


@dataclass(frozen=True)
class Tables11To13Result:
    tables: tuple[DataCacheTable, ...]

    def render(self) -> str:
        return "\n\n".join(table.render() for table in self.tables)

    def table_for(self, program: str) -> DataCacheTable:
        for table in self.tables:
            if table.program == program:
                return table
        raise KeyError(program)


def run_tables11_13(
    programs: tuple[str, ...] = DCACHE_PROGRAMS,
    icache_bytes: int = ICACHE_BYTES,
) -> Tables11To13Result:
    """Regenerate Tables 11-13."""
    tables = []
    for number, program in enumerate(programs, start=11):
        study = get_study(program)
        rows = []
        for memory in MEMORY_MODELS:
            for miss_rate in DATA_MISS_RATES:
                report = study.metrics(
                    SystemConfig(
                        cache_bytes=icache_bytes,
                        memory=memory,
                        data_cache=DataCacheModel(miss_rate=miss_rate),
                    )
                )
                rows.append(
                    DataCacheRow(
                        program=program,
                        memory=memory,
                        icache_bytes=icache_bytes,
                        dcache_miss_rate=miss_rate,
                        relative_performance=report.relative_execution_time,
                    )
                )
        tables.append(
            DataCacheTable(table_number=number, program=program, rows=tuple(rows))
        )
    return Tables11To13Result(tables=tuple(tables))
