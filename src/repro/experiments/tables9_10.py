"""Tables 9-10 — CLB size effects.

Relative performance of NASA7 and espresso with 4-, 8-, and 16-entry
CLBs across cache sizes under both EPROM models.  "These programs show
only minor variations with respect to CLB size over this range" — the
reproduction asserts the same monotone, small effect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SystemConfig
from repro.core.artifacts import get_study
from repro.experiments.formats import render_table
from repro.experiments.tables1_8 import CACHE_SIZES, MEMORY_MODELS

#: The paper's two CLB-study programs and entry counts.
CLB_PROGRAMS = ("nasa7", "espresso")
CLB_ENTRIES = (16, 8, 4)


@dataclass(frozen=True)
class CLBRow:
    """Relative performance per CLB size for one (memory, cache) point."""

    program: str
    memory: str
    cache_bytes: int
    relative_performance: dict[int, float]


@dataclass(frozen=True)
class CLBTable:
    table_number: int
    program: str
    rows: tuple[CLBRow, ...]

    def render(self) -> str:
        headers = ("Memory", "Cache Size") + tuple(
            f"{entries} CLB Entries" for entries in CLB_ENTRIES
        )
        return render_table(
            f"Table {self.table_number}: {self.program} - 100% Data Cache Miss Rate "
            "(Relative Performance)",
            headers,
            [
                (row.memory, f"{row.cache_bytes} byte")
                + tuple(row.relative_performance[entries] for entries in CLB_ENTRIES)
                for row in self.rows
            ],
        )


@dataclass(frozen=True)
class Tables9To10Result:
    tables: tuple[CLBTable, ...]

    def render(self) -> str:
        return "\n\n".join(table.render() for table in self.tables)

    def table_for(self, program: str) -> CLBTable:
        for table in self.tables:
            if table.program == program:
                return table
        raise KeyError(program)


def run_tables9_10(
    programs: tuple[str, ...] = CLB_PROGRAMS,
    cache_sizes: tuple[int, ...] = CACHE_SIZES,
) -> Tables9To10Result:
    """Regenerate Tables 9 and 10."""
    tables = []
    for number, program in enumerate(programs, start=9):
        study = get_study(program)
        rows = []
        for memory in MEMORY_MODELS:
            for cache_bytes in cache_sizes:
                relative = {
                    entries: study.metrics(
                        SystemConfig(
                            cache_bytes=cache_bytes,
                            memory=memory,
                            clb_entries=entries,
                        )
                    ).relative_execution_time
                    for entries in CLB_ENTRIES
                }
                rows.append(
                    CLBRow(
                        program=program,
                        memory=memory,
                        cache_bytes=cache_bytes,
                        relative_performance=relative,
                    )
                )
        tables.append(CLBTable(table_number=number, program=program, rows=tuple(rows)))
    return Tables9To10Result(tables=tuple(tables))
