"""Machine-readable export of experiment results.

Every experiment result is a tree of frozen dataclasses; this module
serialises them to JSON (for downstream analysis and regression diffing)
and writes the rendered text tables alongside, so a single
``ccrp-experiments all --output-dir results/`` leaves a complete,
versionable record of a run.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path


def result_to_dict(result: object) -> object:
    """Recursively convert a result dataclass tree to JSON-able data."""
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return {
            field.name: result_to_dict(getattr(result, field.name))
            for field in dataclasses.fields(result)
        }
    if isinstance(result, dict):
        return {str(key): result_to_dict(value) for key, value in result.items()}
    if isinstance(result, (list, tuple)):
        return [result_to_dict(item) for item in result]
    if isinstance(result, (str, int, float, bool)) or result is None:
        return result
    if hasattr(result, "item"):  # numpy scalars
        return result.item()
    return str(result)


def export_result(result: object, name: str, output_dir: Path) -> tuple[Path, Path]:
    """Write ``<name>.json`` and ``<name>.txt`` under ``output_dir``.

    Returns the two paths written.
    """
    output_dir.mkdir(parents=True, exist_ok=True)
    json_path = output_dir / f"{name}.json"
    text_path = output_dir / f"{name}.txt"
    json_path.write_text(
        json.dumps(result_to_dict(result), indent=2, sort_keys=True) + "\n"
    )
    render = getattr(result, "render", None)
    text_path.write_text((render() if callable(render) else str(result)) + "\n")
    return json_path, text_path
