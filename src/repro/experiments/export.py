"""Machine-readable export of experiment results.

Every experiment result is a tree of frozen dataclasses; this module
serialises them to JSON (for downstream analysis and regression diffing)
and writes the rendered text tables alongside, so a single
``ccrp-experiments all --output-dir results/`` leaves a complete,
versionable record of a run.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path


def result_to_dict(result: object) -> object:
    """Recursively convert a result dataclass tree to JSON-able data."""
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return {
            field.name: result_to_dict(getattr(result, field.name))
            for field in dataclasses.fields(result)
        }
    if isinstance(result, dict):
        return {str(key): result_to_dict(value) for key, value in result.items()}
    if isinstance(result, (list, tuple)):
        return [result_to_dict(item) for item in result]
    if isinstance(result, (str, int, float, bool)) or result is None:
        return result
    if hasattr(result, "item"):  # numpy scalars
        return result.item()
    return str(result)


def export_payload(
    payload: object, rendered: str, name: str, output_dir: Path
) -> tuple[Path, Path]:
    """Write an already-serialised result (parallel workers ship these).

    The JSON encoding is the single point all exports go through, so a
    ``--jobs N`` run produces byte-identical files to a serial one.
    """
    output_dir.mkdir(parents=True, exist_ok=True)
    json_path = output_dir / f"{name}.json"
    text_path = output_dir / f"{name}.txt"
    json_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    text_path.write_text(rendered + "\n")
    return json_path, text_path


def export_result(result: object, name: str, output_dir: Path) -> tuple[Path, Path]:
    """Write ``<name>.json`` and ``<name>.txt`` under ``output_dir``.

    Returns the two paths written.
    """
    render = getattr(result, "render", None)
    rendered = render() if callable(render) else str(result)
    return export_payload(result_to_dict(result), rendered, name, output_dir)
