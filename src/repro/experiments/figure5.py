"""Figure 5 — four compression methods over the ten-program corpus.

For each program the paper reports the compressed size as a percentage of
the original for Unix ``compress``, Traditional Huffman, Bounded Huffman,
and Preselected Bounded Huffman, plus weighted averages over the whole
703 KB corpus.  Per-program Huffman variants are charged their 256-byte
canonical code listing; the preselected code is hard-wired and free; the
Huffman variants operate per 32-byte cache line with the bypass rule, as
in the CCRP proper (LAT overhead is reported separately, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.block import BlockCompressor
from repro.compression.histogram import byte_histogram
from repro.compression.huffman import HuffmanCode
from repro.compression.lzw import lzw_compress
from repro.core.standard import standard_code
from repro.experiments.formats import percent, render_table
from repro.workloads.suite import FIGURE5_PROGRAMS, load_figure5_corpus

#: Bytes charged for storing a per-program canonical code listing.
CODE_TABLE_BYTES = 256


@dataclass(frozen=True)
class CompressionRow:
    """Figure 5 data for one program (ratios are fraction-of-original)."""

    program: str
    original_bytes: int
    unix_compress: float
    traditional_huffman: float
    bounded_huffman: float
    preselected_huffman: float


@dataclass(frozen=True)
class Figure5Result:
    """All rows plus the corpus-weighted average row."""

    rows: tuple[CompressionRow, ...]
    weighted: CompressionRow

    def render(self) -> str:
        headers = (
            "Program",
            "Bytes",
            "Unix compress",
            "Traditional Huffman",
            "Bounded Huffman",
            "Preselected Bounded",
        )
        table_rows = [
            (
                row.program,
                row.original_bytes,
                percent(row.unix_compress, 1),
                percent(row.traditional_huffman, 1),
                percent(row.bounded_huffman, 1),
                percent(row.preselected_huffman, 1),
            )
            for row in (*self.rows, self.weighted)
        ]
        return render_table(
            "Figure 5 - Four Compression Methods (size as % of original)",
            headers,
            table_rows,
        )


def _block_compressed_bytes(code: HuffmanCode, text: bytes, charge_table: bool) -> int:
    compressor = BlockCompressor(code)
    stored = sum(block.stored_size for block in compressor.compress_program(text))
    return stored + (CODE_TABLE_BYTES if charge_table else 0)


def run_figure5(programs: tuple[str, ...] = FIGURE5_PROGRAMS) -> Figure5Result:
    """Compress each corpus program with all four methods."""
    corpus = load_figure5_corpus()
    preselected = standard_code()
    rows = []
    totals = {"original": 0, "lzw": 0, "traditional": 0, "bounded": 0, "preselected": 0}
    for name in programs:
        text = corpus[name]
        histogram = byte_histogram(text)
        traditional = HuffmanCode.from_frequencies(histogram)
        bounded = HuffmanCode.from_frequencies(histogram, max_length=16)
        lzw_bytes = len(lzw_compress(text))
        traditional_bytes = _block_compressed_bytes(traditional, text, charge_table=True)
        bounded_bytes = _block_compressed_bytes(bounded, text, charge_table=True)
        preselected_bytes = _block_compressed_bytes(preselected, text, charge_table=False)
        rows.append(
            CompressionRow(
                program=name,
                original_bytes=len(text),
                unix_compress=lzw_bytes / len(text),
                traditional_huffman=traditional_bytes / len(text),
                bounded_huffman=bounded_bytes / len(text),
                preselected_huffman=preselected_bytes / len(text),
            )
        )
        totals["original"] += len(text)
        totals["lzw"] += lzw_bytes
        totals["traditional"] += traditional_bytes
        totals["bounded"] += bounded_bytes
        totals["preselected"] += preselected_bytes
    weighted = CompressionRow(
        program="Weighted Avg",
        original_bytes=totals["original"],
        unix_compress=totals["lzw"] / totals["original"],
        traditional_huffman=totals["traditional"] / totals["original"],
        bounded_huffman=totals["bounded"] / totals["original"],
        preselected_huffman=totals["preselected"] / totals["original"],
    )
    return Figure5Result(rows=tuple(rows), weighted=weighted)
