"""Experiment harness: regenerates every table and figure in the paper.

| Module | Paper artifact |
|---|---|
| :mod:`repro.experiments.figure5` | Figure 5 — four compression methods |
| :mod:`repro.experiments.tables1_8` | Tables 1-8 — performance vs cache size |
| :mod:`repro.experiments.tables9_10` | Tables 9-10 — CLB size effects |
| :mod:`repro.experiments.figure9` | Figure 9 — performance vs miss rate |
| :mod:`repro.experiments.tables11_13` | Tables 11-13 — data cache effects |
| :mod:`repro.experiments.ablations` | extra: LAT packing, alignment, decode rate |

Run from the command line::

    python -m repro.experiments all
    python -m repro.experiments figure5 tables1-8
"""

from repro.experiments.figure5 import run_figure5
from repro.experiments.figure9 import run_figure9
from repro.experiments.tables1_8 import run_tables1_8
from repro.experiments.tables9_10 import run_tables9_10
from repro.experiments.tables11_13 import run_tables11_13

__all__ = [
    "run_figure5",
    "run_figure9",
    "run_tables1_8",
    "run_tables9_10",
    "run_tables11_13",
]
