"""Prefetching fetch policies: miss-latency hiding vs wasted bandwidth.

The paper's CCRP charges every instruction-cache miss the full
sequential Huffman decode latency — the price of compression.  The
prefetching refill engine (:mod:`repro.prefetch`) overlaps speculative
decodes with execution; this experiment quantifies how much of the
decompression bill that recovers, and what it costs:

* the main table runs every simulation workload under all three memory
  models and all three fetch policies (``demand``, ``nextline``,
  ``btb``), reporting CCRP fetch stalls, the reduction vs demand, the
  paper's relative-performance metric, and the honest waste counters
  (useless prefetches, wrong-path traffic bytes);
* a CLB-size sweep and a prefetch-buffer-depth sweep on one
  representative workload show how the hiding interacts with the LAT
  cache and with buffer pressure;
* every (workload, policy) cell is pinned by an **equivalence check**:
  the stateful exact front end
  (:class:`~repro.prefetch.engine.PrefetchingFetchUnit`) replayed
  access-by-access must be byte-identical — every counter — to the
  vectorized timeline (:func:`~repro.prefetch.simulate_fetch_stream`)
  the study tables are built from.

``python -m repro.experiments.prefetch_study --smoke`` is the CI gate:
bounded prefixes, loop-heavy kernels, and it fails unless the
prefetching policies strictly reduce fetch stalls and the equivalence
check has zero diffs.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass

import numpy as np

from repro.ccrp.clb import CLB
from repro.core.artifacts import get_study
from repro.core.config import SystemConfig
from repro.experiments.formats import render_table
from repro.prefetch import (
    FETCH_POLICIES,
    FetchReplay,
    PrefetchingFetchUnit,
    simulate_fetch_stream,
)
from repro.workloads.suite import SIMULATION_PROGRAMS

#: The paper's three instruction-memory implementations.
MEMORY_NAMES = ("eprom", "burst_eprom", "sc_dram")

#: Workload for the CLB / depth sweeps: large enough that its miss
#: stream exercises the CLB, sequential enough that prefetching matters.
SWEEP_PROGRAM = "nasa7"

#: Loop-heavy kernels the smoke gate requires strict improvement on.
SMOKE_PROGRAMS = ("lloop01", "nasa7")


@dataclass(frozen=True)
class PolicyRow:
    """One (program, memory, policy) cell of the main table."""

    program: str
    memory: str
    policy: str
    fetch_stalls: int
    reduction_pct: float  # vs the demand policy, same program/memory
    relative_time: float  # T_CCRP / T_standard (the paper's metric)
    issued: int
    useful: int
    useless: int
    partial: int
    covered_cycles: int
    wasted_bytes: int


@dataclass(frozen=True)
class SweepRow:
    """One point of the CLB-size or buffer-depth sweep."""

    parameter: int
    policy: str
    fetch_stalls: int
    reduction_pct: float


@dataclass(frozen=True)
class EquivalenceCheck:
    """Exact unit vs vectorized timeline on one (program, policy)."""

    program: str
    policy: str
    accesses: int
    identical: bool


@dataclass(frozen=True)
class PrefetchStudyResult:
    rows: tuple[PolicyRow, ...]
    clb_sweep: tuple[SweepRow, ...]
    depth_sweep: tuple[SweepRow, ...]
    equivalence: tuple[EquivalenceCheck, ...]
    cache_bytes: int
    sweep_program: str

    @property
    def equivalence_diffs(self) -> int:
        return sum(1 for check in self.equivalence if not check.identical)

    @property
    def best_reduction(self) -> PolicyRow:
        return max(self.rows, key=lambda row: row.reduction_pct)

    def render(self) -> str:
        main = render_table(
            f"Prefetching fetch policies (CCRP machine, "
            f"{self.cache_bytes} B cache, 16-entry CLB)",
            (
                "Program",
                "Memory",
                "Policy",
                "Fetch stalls",
                "vs demand",
                "Rel. perf",
                "Issued",
                "Useful",
                "Useless",
                "Wasted B",
            ),
            [
                (
                    row.program,
                    row.memory,
                    row.policy,
                    row.fetch_stalls,
                    f"-{row.reduction_pct:.1f}%" if row.policy != "demand" else "",
                    row.relative_time,
                    row.issued,
                    row.useful,
                    row.useless,
                    row.wasted_bytes,
                )
                for row in self.rows
            ],
        )
        clb = render_table(
            f"CLB-size sweep ({self.sweep_program}, sc_dram)",
            ("CLB entries", "Policy", "Fetch stalls", "vs demand"),
            [
                (row.parameter, row.policy, row.fetch_stalls, f"-{row.reduction_pct:.1f}%")
                for row in self.clb_sweep
            ],
        )
        depth = render_table(
            f"Prefetch-buffer depth sweep ({self.sweep_program}, sc_dram)",
            ("Depth", "Policy", "Fetch stalls", "vs demand"),
            [
                (row.parameter, row.policy, row.fetch_stalls, f"-{row.reduction_pct:.1f}%")
                for row in self.depth_sweep
            ],
        )
        best = self.best_reduction
        checked = len(self.equivalence)
        verdict = (
            f"all {checked} identical"
            if self.equivalence_diffs == 0
            else f"{self.equivalence_diffs} of {checked} DIFFER"
        )
        return (
            main
            + "\n\n"
            + clb
            + "\n\n"
            + depth
            + "\n\nBest stall reduction: "
            f"{best.program} @ {best.memory}/{best.policy} "
            f"(-{best.reduction_pct:.1f}%, {best.covered_cycles:,} cycles hidden)."
            f"\nExact-vs-timeline equivalence: {verdict}."
        )


def _policy_config(
    cache_bytes: int, memory: str, policy: str, **overrides
) -> SystemConfig:
    return SystemConfig(
        cache_bytes=cache_bytes,
        memory=memory,
        timing="pipeline",
        fetch_policy=policy,
        **overrides,
    )


def _exact_replay(
    study, memory: str, cache_bytes: int, policy: str, addresses: np.ndarray
) -> FetchReplay:
    """Drive the stateful exact unit over ``addresses`` (golden path)."""
    config = SystemConfig()  # default decoder/CLB geometry
    unit = PrefetchingFetchUnit(
        cache_bytes,
        memory,
        line_size=study.image.line_size,
        refill=study.refill_engine(memory, config.decoder),
        clb=CLB(entries=config.clb_entries),
        policy=policy,
        btb=study.btb() if policy == "btb" else None,
    )
    stalls = 0
    for address in addresses.tolist():
        stalls += unit.fetch(address)
    return FetchReplay.from_unit(unit, stalls)


def _timeline_replay(
    study, memory: str, cache_bytes: int, policy: str, addresses: np.ndarray
) -> FetchReplay:
    config = SystemConfig()
    return simulate_fetch_stream(
        addresses,
        cache_bytes,
        study.image.line_size,
        memory,
        refill=study.refill_engine(memory, config.decoder),
        clb=CLB(entries=config.clb_entries),
        policy=policy,
        btb=study.btb() if policy == "btb" else None,
    )


def run_prefetch_study(
    programs: tuple[str, ...] = SIMULATION_PROGRAMS,
    cache_bytes: int = 1024,
    equivalence_prefix: int | None = None,
    clb_sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    depths: tuple[int, ...] = (1, 2, 4, 8),
    sweep_program: str = SWEEP_PROGRAM,
) -> PrefetchStudyResult:
    """The full study: policy table, sweeps, and the equivalence gate.

    ``equivalence_prefix`` bounds the exact replay used by the
    byte-identity check (``None`` replays every workload's full address
    stream — the acceptance setting; the smoke gate passes a prefix).
    """
    rows = []
    for program in programs:
        study = get_study(program)
        for memory in MEMORY_NAMES:
            demand_stalls = None
            for policy in FETCH_POLICIES:
                report = study.metrics(
                    _policy_config(cache_bytes, memory, policy)
                )
                stalls = report.ccrp.refill_cycles
                if policy == "demand":
                    demand_stalls = stalls
                    reduction = 0.0
                else:
                    reduction = (
                        100.0 * (1.0 - stalls / demand_stalls)
                        if demand_stalls
                        else 0.0
                    )
                rows.append(
                    PolicyRow(
                        program=program,
                        memory=memory,
                        policy=policy,
                        fetch_stalls=stalls,
                        reduction_pct=reduction,
                        relative_time=report.relative_execution_time,
                        issued=report.ccrp.prefetch_issued,
                        useful=report.ccrp.prefetch_useful,
                        useless=report.ccrp.prefetch_useless,
                        partial=report.ccrp.prefetch_partial,
                        covered_cycles=report.ccrp.covered_stall_cycles,
                        wasted_bytes=report.ccrp.wasted_traffic_bytes,
                    )
                )

    sweep_study = get_study(sweep_program)
    clb_sweep = []
    for entries in clb_sizes:
        demand = sweep_study.metrics(
            _policy_config(cache_bytes, "sc_dram", "demand", clb_entries=entries)
        ).ccrp.refill_cycles
        for policy in ("nextline", "btb"):
            stalls = sweep_study.metrics(
                _policy_config(cache_bytes, "sc_dram", policy, clb_entries=entries)
            ).ccrp.refill_cycles
            clb_sweep.append(
                SweepRow(
                    parameter=entries,
                    policy=policy,
                    fetch_stalls=stalls,
                    reduction_pct=100.0 * (1.0 - stalls / demand) if demand else 0.0,
                )
            )
    depth_sweep = []
    demand = sweep_study.metrics(
        _policy_config(cache_bytes, "sc_dram", "demand")
    ).ccrp.refill_cycles
    for depth in depths:
        for policy in ("nextline", "btb"):
            stalls = sweep_study.metrics(
                _policy_config(cache_bytes, "sc_dram", policy, prefetch_depth=depth)
            ).ccrp.refill_cycles
            depth_sweep.append(
                SweepRow(
                    parameter=depth,
                    policy=policy,
                    fetch_stalls=stalls,
                    reduction_pct=100.0 * (1.0 - stalls / demand) if demand else 0.0,
                )
            )

    equivalence = []
    for program in programs:
        study = get_study(program)
        addresses = study.execution.trace.addresses
        if equivalence_prefix is not None:
            addresses = addresses[:equivalence_prefix]
        for policy in FETCH_POLICIES:
            exact = _exact_replay(study, "sc_dram", cache_bytes, policy, addresses)
            timeline = _timeline_replay(
                study, "sc_dram", cache_bytes, policy, addresses
            )
            equivalence.append(
                EquivalenceCheck(
                    program=program,
                    policy=policy,
                    accesses=len(addresses),
                    identical=exact == timeline,
                )
            )

    return PrefetchStudyResult(
        rows=tuple(rows),
        clb_sweep=tuple(clb_sweep),
        depth_sweep=tuple(depth_sweep),
        equivalence=tuple(equivalence),
        cache_bytes=cache_bytes,
        sweep_program=sweep_program,
    )


def run_smoke(prefix: int = 150_000) -> PrefetchStudyResult:
    """CI gate: bounded prefixes, loop-heavy kernels, strict assertions.

    Fails (``SystemExit``) unless every prefetching policy strictly
    reduces fetch stalls on every smoke cell with a nonzero demand bill,
    and the exact-vs-timeline equivalence check has zero diffs.
    """
    result = run_prefetch_study(
        programs=SMOKE_PROGRAMS,
        cache_bytes=256,
        equivalence_prefix=prefix,
        clb_sizes=(4, 16),
        depths=(2, 4),
    )
    if result.equivalence_diffs:
        raise SystemExit(
            f"prefetch smoke: {result.equivalence_diffs} exact-vs-timeline "
            f"equivalence diffs (must be zero)"
        )
    demand = {
        (row.program, row.memory): row.fetch_stalls
        for row in result.rows
        if row.policy == "demand"
    }
    for row in result.rows:
        if row.policy == "demand":
            continue
        baseline = demand[(row.program, row.memory)]
        if baseline and row.fetch_stalls >= baseline:
            raise SystemExit(
                f"prefetch smoke: {row.policy} did not reduce fetch stalls on "
                f"{row.program}@{row.memory} ({row.fetch_stalls} >= {baseline})"
            )
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI gate: loop-heavy kernels, bounded prefixes, strict "
        "reduction and zero-diff equivalence assertions",
    )
    parser.add_argument(
        "--prefix",
        type=int,
        default=150_000,
        help="equivalence-check prefix length for --smoke (default: 150000)",
    )
    args = parser.parse_args(argv)
    result = run_smoke(args.prefix) if args.smoke else run_prefetch_study()
    print(result.render())
    if args.smoke:
        print("\n[prefetch smoke passed: strict reductions, zero equivalence diffs]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
