"""Pipeline-vs-additive timing validation across the workload suite.

The cycle-accurate 5-stage backend (:mod:`repro.pipeline`) and the
paper's additive stall model disagree exactly where they should: the
additive model charges every long-latency result its full latency and
cannot see branch redirects, while the pipeline model charges only the
*unabsorbed* latency plus the redirect bubbles.  This experiment pins
that relationship down:

* for every simulation workload under both timing backends and all
  three memory models (EPROM, Burst EPROM, SC-DRAM), the CCRP machine's
  total cycles and the pipeline backend's stall breakdown;
* a hazard-free straight-line program, where the two backends must
  agree to within :data:`~repro.pipeline.datapath.PIPELINE_FILL_CYCLES`
  cycles — the pipeline fill is the only term the additive model lacks
  once hazards and redirects are gone (the refill terms are computed by
  the same vectorized gathers on both backends).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.artifacts import get_study
from repro.core.config import SystemConfig
from repro.core.study import ProgramStudy
from repro.experiments.formats import render_table
from repro.isa.assembler import Assembler
from repro.pipeline.datapath import PIPELINE_FILL_CYCLES
from repro.workloads.suite import SIMULATION_PROGRAMS, Workload

#: The paper's three instruction-memory implementations.
MEMORY_NAMES = ("eprom", "burst_eprom", "sc_dram")

#: Hazard-free straight-line source: single-cycle ALU results are fully
#: forwardable, so the pipeline model adds no stalls of any category.
_STRAIGHT_LINE_SOURCE = (
    ".text\nmain:\n    addiu $t0, $zero, 7\n"
    + "".join(
        f"    addiu $t{index % 8}, $t{(index + 1) % 8}, {index + 1}\n"
        for index in range(96)
    )
    + "    or  $a0, $zero, $zero\n    li  $v0, 10\n    syscall\n"
)


@dataclass(frozen=True)
class ValidationRow:
    """One workload under one memory model, both timing backends."""

    program: str
    memory: str
    additive_total: int
    pipeline_total: int
    ratio: float  # pipeline / additive
    hazard_stalls: int
    branch_stalls: int
    fetch_stalls: int
    data_stalls: int


@dataclass(frozen=True)
class StraightLineCheck:
    """Backend agreement on hazard-free straight-line code."""

    additive_total: int
    pipeline_total: int
    divergence: int
    bound: int

    @property
    def within_bound(self) -> bool:
        return abs(self.divergence) <= self.bound


@dataclass(frozen=True)
class PipelineValidationResult:
    rows: tuple[ValidationRow, ...]
    straight_line: StraightLineCheck

    def render(self) -> str:
        table = render_table(
            "Pipeline vs additive timing (CCRP machine, 1 KB cache)",
            (
                "Program",
                "Memory",
                "Additive cyc",
                "Pipeline cyc",
                "Pipe/Add",
                "Hazard",
                "Branch",
                "Fetch",
                "Data",
            ),
            [
                (
                    row.program,
                    row.memory,
                    row.additive_total,
                    row.pipeline_total,
                    row.ratio,
                    row.hazard_stalls,
                    row.branch_stalls,
                    row.fetch_stalls,
                    row.data_stalls,
                )
                for row in self.rows
            ],
        )
        check = self.straight_line
        verdict = "within" if check.within_bound else "OUTSIDE"
        return table + (
            "\n\nStraight-line agreement: additive "
            f"{check.additive_total} vs pipeline {check.pipeline_total} cycles "
            f"(divergence {check.divergence}, {verdict} the documented "
            f"bound of {check.bound} fill cycles)."
            "\nThe pipeline backend sees branch redirects the additive model"
            "\ncannot, and forgives latency the instruction spacing absorbs."
        )

    def rows_for(self, program: str) -> tuple[ValidationRow, ...]:
        return tuple(row for row in self.rows if row.program == program)


def straight_line_workload() -> Workload:
    """The hazard-free validation program as an ad-hoc workload."""
    program = Assembler().assemble(_STRAIGHT_LINE_SOURCE)
    return Workload(name="straightline", program=program, executable=True)


def run_pipeline_validation(
    programs: tuple[str, ...] = SIMULATION_PROGRAMS,
    cache_bytes: int = 1024,
) -> PipelineValidationResult:
    """Run the suite under both backends and all three memory models."""
    rows = []
    for program in programs:
        study = get_study(program)
        for memory in MEMORY_NAMES:
            additive = study.metrics(
                SystemConfig(cache_bytes=cache_bytes, memory=memory, timing="additive")
            )
            pipeline = study.metrics(
                SystemConfig(cache_bytes=cache_bytes, memory=memory, timing="pipeline")
            )
            ccrp = pipeline.ccrp
            rows.append(
                ValidationRow(
                    program=program,
                    memory=memory,
                    additive_total=additive.ccrp.total_cycles,
                    pipeline_total=ccrp.total_cycles,
                    ratio=ccrp.total_cycles / additive.ccrp.total_cycles,
                    hazard_stalls=ccrp.hazard_stall_cycles,
                    branch_stalls=ccrp.branch_stall_cycles,
                    fetch_stalls=ccrp.refill_cycles,
                    data_stalls=ccrp.data_cycles,
                )
            )

    study = ProgramStudy(straight_line_workload())
    additive = study.metrics(SystemConfig(timing="additive")).ccrp.total_cycles
    pipeline = study.metrics(SystemConfig(timing="pipeline")).ccrp.total_cycles
    check = StraightLineCheck(
        additive_total=additive,
        pipeline_total=pipeline,
        divergence=pipeline - additive,
        bound=PIPELINE_FILL_CYCLES,
    )
    return PipelineValidationResult(rows=tuple(rows), straight_line=check)
