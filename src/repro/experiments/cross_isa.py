"""Cross-ISA effectiveness (paper Section 5's first proposed experiment).

"One such experiment is to measure the effectiveness of this method on
instruction sets other than MIPS."

The corpus is re-encoded into the A32-like layout of
:mod:`repro.isa.altisa` and three preselected bounded Huffman codes are
compared on it and on the original MIPS encoding:

* each ISA with its own corpus-trained code (the deployment the paper
  intends — the decoder is wired per architecture);
* each ISA with the *other* ISA's code (what happens if the hard-wired
  decoder does not match the architecture).

The expected result, which the benchmark asserts: both ISAs compress to
a similar band with their own code — the CCRP generalises — while
cross-trained codes lose several points, confirming that the preselected
code is an architecture-specific artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.block import BlockCompressor
from repro.compression.huffman import HuffmanCode
from repro.compression.preselected import build_preselected_code
from repro.experiments.formats import percent, render_table
from repro.isa.altisa import reencode_program
from repro.workloads.suite import FIGURE5_PROGRAMS, load_figure5_corpus


@dataclass(frozen=True)
class CrossISARow:
    program: str
    original_bytes: int
    mips_own_code: float  # MIPS bytes, MIPS-trained code
    alt_own_code: float  # A32-like bytes, A32-trained code
    mips_with_alt_code: float  # mismatch: MIPS bytes, A32-trained code
    alt_with_mips_code: float  # mismatch: A32-like bytes, MIPS-trained code


@dataclass(frozen=True)
class CrossISAResult:
    rows: tuple[CrossISARow, ...]
    weighted: CrossISARow

    def render(self) -> str:
        table = render_table(
            "Cross-ISA preselected-code effectiveness (size as % of original)",
            (
                "Program",
                "Bytes",
                "MIPS/own",
                "A32-like/own",
                "MIPS/alt code",
                "A32-like/MIPS code",
            ),
            [
                (
                    row.program,
                    row.original_bytes,
                    percent(row.mips_own_code, 1),
                    percent(row.alt_own_code, 1),
                    percent(row.mips_with_alt_code, 1),
                    percent(row.alt_with_mips_code, 1),
                )
                for row in (*self.rows, self.weighted)
            ],
        )
        return table + (
            "\n\nBoth ISAs sit in the same band with their own trained code"
            "\n(the CCRP idea generalises); swapping codes across ISAs costs"
            "\nseveral points (the preselected code is per-architecture)."
        )


def _ratio(code: HuffmanCode, text: bytes) -> float:
    blocks = BlockCompressor(code).compress_program(text)
    return sum(block.stored_size for block in blocks) / len(text)


def run_cross_isa(programs: tuple[str, ...] = FIGURE5_PROGRAMS) -> CrossISAResult:
    """Run the cross-ISA comparison over the Figure 5 corpus."""
    corpus = load_figure5_corpus()
    mips_texts = {name: corpus[name] for name in programs}
    alt_texts = {name: reencode_program(text) for name, text in mips_texts.items()}

    mips_code = build_preselected_code(mips_texts.values())
    alt_code = build_preselected_code(alt_texts.values())

    rows = []
    totals = [0, 0.0, 0.0, 0.0, 0.0]
    for name in programs:
        mips_text, alt_text = mips_texts[name], alt_texts[name]
        row = CrossISARow(
            program=name,
            original_bytes=len(mips_text),
            mips_own_code=_ratio(mips_code, mips_text),
            alt_own_code=_ratio(alt_code, alt_text),
            mips_with_alt_code=_ratio(alt_code, mips_text),
            alt_with_mips_code=_ratio(mips_code, alt_text),
        )
        rows.append(row)
        totals[0] += len(mips_text)
        totals[1] += row.mips_own_code * len(mips_text)
        totals[2] += row.alt_own_code * len(mips_text)
        totals[3] += row.mips_with_alt_code * len(mips_text)
        totals[4] += row.alt_with_mips_code * len(mips_text)
    weighted = CrossISARow(
        program="Weighted Avg",
        original_bytes=totals[0],
        mips_own_code=totals[1] / totals[0],
        alt_own_code=totals[2] / totals[0],
        mips_with_alt_code=totals[3] / totals[0],
        alt_with_mips_code=totals[4] / totals[0],
    )
    return CrossISAResult(rows=tuple(rows), weighted=weighted)
