"""Figure 9 — relative performance vs instruction-cache miss rate.

The paper plots most of the Section 4.2.1 results as one scatter: for
slow (EPROM) memory the compressed-code machine wins more as the miss
rate rises; for faster memory (Burst EPROM, DRAM) it loses more.  The
reproduction regenerates the same point cloud and fits the per-model
trend slope so the crossing behaviour can be asserted numerically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SystemConfig
from repro.core.artifacts import get_study
from repro.experiments.formats import ascii_scatter
from repro.experiments.tables1_8 import CACHE_SIZES
from repro.workloads.suite import SIMULATION_PROGRAMS

#: Marker characters per memory model, as in the paper's legend.
MARKERS = {"eprom": "x", "burst_eprom": "o", "sc_dram": "+"}


@dataclass(frozen=True)
class ScatterPoint:
    """One simulation result in Figure 9 space."""

    program: str
    memory: str
    cache_bytes: int
    miss_rate: float
    relative_performance: float


@dataclass(frozen=True)
class Figure9Result:
    points: tuple[ScatterPoint, ...]

    def points_for(self, memory: str) -> list[ScatterPoint]:
        return [point for point in self.points if point.memory == memory]

    def trend_slope(self, memory: str) -> float:
        """Least-squares slope of relative performance vs miss rate."""
        selected = self.points_for(memory)
        x = np.array([point.miss_rate for point in selected])
        y = np.array([point.relative_performance for point in selected])
        if len(x) < 2 or np.ptp(x) == 0:
            return 0.0
        return float(np.polyfit(x, y, 1)[0])

    def render(self) -> str:
        plot = ascii_scatter(
            [
                (point.miss_rate, point.relative_performance, MARKERS[point.memory])
                for point in self.points
            ],
            x_label="instruction cache miss rate",
            y_label="relative performance (T_CCRP / T_std)",
        )
        legend = "  ".join(f"{marker} = {memory}" for memory, marker in MARKERS.items())
        slopes = "  ".join(
            f"{memory}: slope {self.trend_slope(memory):+.2f}" for memory in MARKERS
        )
        csv_lines = ["program,memory,cache_bytes,miss_rate,relative_performance"]
        csv_lines += [
            f"{p.program},{p.memory},{p.cache_bytes},{p.miss_rate:.5f},"
            f"{p.relative_performance:.4f}"
            for p in self.points
        ]
        return "\n".join(
            [
                "Figure 9 - Performance vs. Instruction Cache Miss Rate",
                plot,
                legend,
                slopes,
                "",
                "\n".join(csv_lines),
            ]
        )


def run_figure9(
    programs: tuple[str, ...] = SIMULATION_PROGRAMS,
    cache_sizes: tuple[int, ...] = CACHE_SIZES,
) -> Figure9Result:
    """Regenerate the Figure 9 point cloud across all three memories."""
    points = []
    for program in programs:
        study = get_study(program)
        for memory in MARKERS:
            for cache_bytes in cache_sizes:
                report = study.metrics(
                    SystemConfig(cache_bytes=cache_bytes, memory=memory)
                )
                points.append(
                    ScatterPoint(
                        program=program,
                        memory=memory,
                        cache_bytes=cache_bytes,
                        miss_rate=report.miss_rate,
                        relative_performance=report.relative_execution_time,
                    )
                )
    return Figure9Result(points=tuple(points))
