"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments all
    python -m repro.experiments figure5 tables9-10
    ccrp-experiments figure9
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Callable
from pathlib import Path


def _registry() -> dict[str, Callable[[], object]]:
    from repro.experiments.ablations import run_ablations
    from repro.experiments.bus_width import run_bus_width
    from repro.experiments.cross_isa import run_cross_isa
    from repro.experiments.dense_isa import run_dense_isa
    from repro.experiments.extensions import run_extensions
    from repro.experiments.figure5 import run_figure5
    from repro.experiments.figure9 import run_figure9
    from repro.experiments.tables1_8 import run_tables1_8
    from repro.experiments.tables9_10 import run_tables9_10
    from repro.experiments.tables11_13 import run_tables11_13

    return {
        "figure5": run_figure5,
        "tables1-8": run_tables1_8,
        "tables9-10": run_tables9_10,
        "figure9": run_figure9,
        "tables11-13": run_tables11_13,
        "ablations": run_ablations,
        "extensions": run_extensions,
        "dense-isa": run_dense_isa,
        "bus-width": run_bus_width,
        "cross-isa": run_cross_isa,
    }


def main(argv: list[str] | None = None) -> int:
    """Run the named experiments and print their rendered tables."""
    registry = _registry()
    parser = argparse.ArgumentParser(
        prog="ccrp-experiments",
        description="Regenerate the tables and figures of Wolfe & Chanin, MICRO 1992.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(registry) + ["all"],
        help="which experiments to run ('all' runs every one)",
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        help="also write <experiment>.json and <experiment>.txt here",
    )
    args = parser.parse_args(argv)

    names = list(registry) if "all" in args.experiments else args.experiments
    for name in names:
        started = time.time()
        result = registry[name]()
        elapsed = time.time() - started
        print(result.render())
        print(f"\n[{name} completed in {elapsed:.1f}s]\n")
        if args.output_dir:
            from repro.experiments.export import export_result

            json_path, text_path = export_result(result, name, args.output_dir)
            print(f"[wrote {json_path} and {text_path}]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
