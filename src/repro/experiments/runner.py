"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments all
    python -m repro.experiments all --jobs 4 --output-dir results/
    python -m repro.experiments figure5 tables9-10 --metrics metrics.json
    ccrp-experiments figure9 --no-cache

``--jobs N`` fans independent experiments across a process pool; results
are printed and exported in the requested order and are byte-identical to
a serial run (workers ship pre-serialised payloads through one shared
JSON encoder).  ``--metrics`` dumps stage timers and artifact-cache
hit/miss counters — including those of worker processes — so speedups
are measured, not asserted.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time
from collections.abc import Callable
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path


def _registry() -> dict[str, Callable[[], object]]:
    from repro.experiments.ablations import run_ablations
    from repro.experiments.bus_width import run_bus_width
    from repro.experiments.cross_isa import run_cross_isa
    from repro.experiments.dense_isa import run_dense_isa
    from repro.experiments.extensions import run_extensions
    from repro.experiments.fault_study import run_fault_study
    from repro.experiments.figure5 import run_figure5
    from repro.experiments.figure9 import run_figure9
    from repro.experiments.pipeline_validation import run_pipeline_validation
    from repro.experiments.prefetch_study import run_prefetch_study
    from repro.experiments.tables1_8 import run_tables1_8
    from repro.experiments.tables9_10 import run_tables9_10
    from repro.experiments.tables11_13 import run_tables11_13

    return {
        "figure5": run_figure5,
        "tables1-8": run_tables1_8,
        "tables9-10": run_tables9_10,
        "figure9": run_figure9,
        "tables11-13": run_tables11_13,
        "ablations": run_ablations,
        "extensions": run_extensions,
        "dense-isa": run_dense_isa,
        "bus-width": run_bus_width,
        "cross-isa": run_cross_isa,
        "pipeline-validation": run_pipeline_validation,
        "fault-study": run_fault_study,
        "prefetch-study": run_prefetch_study,
    }


@dataclass(frozen=True)
class ExperimentOutcome:
    """What one experiment run ships back to the coordinating process."""

    name: str
    rendered: str
    payload: object
    elapsed_seconds: float
    metrics: dict | None = None


def _run_single(
    name: str,
    use_cache: bool = True,
    isolate_metrics: bool = False,
    timing: str = "additive",
) -> ExperimentOutcome:
    """Run one experiment and package its result for printing/export.

    Module-level so :class:`ProcessPoolExecutor` can pickle it.  Workers
    pass ``isolate_metrics=True``: the registry is reset before the run
    and its snapshot travels back for the parent to merge, so pooled
    workers that run several experiments never double-report.  The
    ``timing`` backend travels the same way: workers are fresh
    processes, so the parent's default must be re-applied in each.
    """
    from repro.core import artifacts
    from repro.core.config import set_default_timing
    from repro.core.metrics import METRICS
    from repro.experiments.export import result_to_dict

    set_default_timing(timing)
    if not use_cache:
        artifacts.set_cache_enabled(False)
    if isolate_metrics:
        METRICS.reset()
    started = time.perf_counter()
    with METRICS.stage(f"experiment.{name}"):
        result = _registry()[name]()
    elapsed = time.perf_counter() - started
    return ExperimentOutcome(
        name=name,
        rendered=result.render(),
        payload=result_to_dict(result),
        elapsed_seconds=elapsed,
        metrics=METRICS.snapshot() if isolate_metrics else None,
    )


def _dedupe(names: list[str]) -> list[str]:
    """Drop repeated experiment names, keeping first-occurrence order."""
    return list(dict.fromkeys(names))


def main(argv: list[str] | None = None) -> int:
    """Run the named experiments and print their rendered tables."""
    from repro.core import artifacts
    from repro.core.metrics import METRICS
    from repro.core.sweep import _pool_context, effective_jobs
    from repro.experiments.export import export_payload

    registry = _registry()
    parser = argparse.ArgumentParser(
        prog="ccrp-experiments",
        description="Regenerate the tables and figures of Wolfe & Chanin, MICRO 1992.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(registry) + ["all"],
        help="which experiments to run ('all' runs every one)",
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        help="also write <experiment>.json and <experiment>.txt here",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run up to N experiments in parallel worker processes "
        "(clamped to the CPUs actually available to this process; the "
        "effective value lands in --metrics)",
    )
    parser.add_argument(
        "--metrics",
        type=Path,
        metavar="FILE",
        help="write stage timers and cache counters as JSON",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk artifact cache for this run",
    )
    parser.add_argument(
        "--timing",
        choices=("additive", "pipeline"),
        default="additive",
        help="timing backend every experiment's configs default to: the "
        "paper's additive stall model or the cycle-accurate 5-stage "
        "pipeline (see docs/modeling_notes.md)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")

    from repro.core.config import set_default_timing

    set_default_timing(args.timing)

    names = list(registry) if "all" in args.experiments else _dedupe(args.experiments)
    # Clamp to the CPU count and the task count: asking for more workers
    # than either just adds process start-up cost.  1 means run serial.
    jobs_effective = effective_jobs(args.jobs, len(names))
    if args.output_dir:
        args.output_dir.mkdir(parents=True, exist_ok=True)

    overall_started = time.perf_counter()

    def _finish(outcome: ExperimentOutcome) -> None:
        print(outcome.rendered)
        print(f"\n[{outcome.name} completed in {outcome.elapsed_seconds:.1f}s]\n")
        if args.output_dir:
            json_path, text_path = export_payload(
                outcome.payload, outcome.rendered, outcome.name, args.output_dir
            )
            print(f"[wrote {json_path} and {text_path}]\n")

    outcomes: list[ExperimentOutcome] = []
    bypass = artifacts.cache_disabled() if args.no_cache else contextlib.nullcontext()
    with bypass:
        if jobs_effective > 1:
            with ProcessPoolExecutor(
                max_workers=jobs_effective, mp_context=_pool_context()
            ) as pool:
                futures = [
                    pool.submit(
                        _run_single,
                        name,
                        use_cache=not args.no_cache,
                        isolate_metrics=True,
                        timing=args.timing,
                    )
                    for name in names
                ]
                for future in futures:
                    outcome = future.result()
                    METRICS.merge(outcome.metrics or {})
                    outcomes.append(outcome)
                    _finish(outcome)
        else:
            for name in names:
                outcome = _run_single(
                    name, use_cache=not args.no_cache, timing=args.timing
                )
                outcomes.append(outcome)
                _finish(outcome)

        cache_state = {
            "enabled": artifacts.cache_enabled(),
            "dir": str(artifacts.cache_root()),
        }

    if args.metrics:
        METRICS.write_json(
            args.metrics,
            extra={
                "jobs": args.jobs,
                "jobs_effective": jobs_effective,
                "timing": args.timing,
                "cache": cache_state,
                "total_wall_seconds": time.perf_counter() - overall_started,
                "experiments": {
                    outcome.name: {"elapsed_seconds": outcome.elapsed_seconds}
                    for outcome in outcomes
                },
            },
        )
        print(f"[wrote metrics to {args.metrics}]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
