"""Extension experiments: the paper's Section 5 proposals, implemented.

* **Multiple preselected codes** — "to preselect multiple codes and to
  use the one that provides the best compression for each instruction
  block": sweep 1/2/4 trained codes over the Figure 5 corpus.
* **Associativity** — the paper attributes espresso's penalty to a small
  direct-mapped cache; quantify how much associativity (a "different
  parameter chosen for this program") recovers.
* **Compressed demand paging** — "similar methods for demand-paged
  virtual memory": storage and fault-service comparison per memory model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.direct_mapped import simulate_trace
from repro.cache.set_associative import simulate_trace_associative
from repro.ccrp.paging import CompressedPageStore, PagedMemorySimulator
from repro.compression.multicode import MultiCodeCompressor, train_code_set
from repro.core.standard import standard_code
from repro.experiments.formats import percent, render_table
from repro.workloads.suite import load, load_figure5_corpus


@dataclass(frozen=True)
class MultiCodeRow:
    code_count: int
    compressed_ratio: float  # corpus-weighted, tags included


@dataclass(frozen=True)
class AssociativityRow:
    program: str
    cache_bytes: int
    miss_direct: float
    miss_2way: float
    miss_4way: float


@dataclass(frozen=True)
class PagingRow:
    memory: str
    faults: int
    compressed_fault_cycles: int
    baseline_fault_cycles: int
    storage_ratio: float


@dataclass(frozen=True)
class ExtensionsResult:
    multicode_rows: tuple[MultiCodeRow, ...]
    associativity_rows: tuple[AssociativityRow, ...]
    paging_rows: tuple[PagingRow, ...]

    def render(self) -> str:
        parts = [
            render_table(
                "Extension A: multiple preselected codes (corpus-weighted size)",
                ("Codes", "Compressed size (tags incl.)"),
                [
                    (row.code_count, percent(row.compressed_ratio, 1))
                    for row in self.multicode_rows
                ],
            ),
            render_table(
                "Extension B: associativity vs espresso's conflict misses",
                ("Program", "Cache", "Direct", "2-way", "4-way"),
                [
                    (
                        row.program,
                        f"{row.cache_bytes} byte",
                        percent(row.miss_direct),
                        percent(row.miss_2way),
                        percent(row.miss_4way),
                    )
                    for row in self.associativity_rows
                ],
            ),
            render_table(
                "Extension C: compressed demand paging (espresso, 16 frames of 1 KB)",
                ("Memory", "Faults", "Fault cycles (CCRP)", "Fault cycles (std)", "Storage"),
                [
                    (
                        row.memory,
                        row.faults,
                        row.compressed_fault_cycles,
                        row.baseline_fault_cycles,
                        percent(row.storage_ratio, 1),
                    )
                    for row in self.paging_rows
                ],
            ),
        ]
        return "\n\n".join(parts)


def run_extensions() -> ExtensionsResult:
    """Run all three extension studies."""
    corpus = load_figure5_corpus()
    texts = list(corpus.values())

    # --- Extension A: multiple preselected codes ------------------------
    multicode_rows = []
    total_original = sum(len(text) for text in texts)
    for code_count in (1, 2, 4):
        codes = train_code_set(texts, code_count=code_count, refinement_rounds=2)
        compressor = MultiCodeCompressor(codes)
        total = sum(
            compressor.compressed_size(compressor.compress_program(text))
            for text in texts
        )
        multicode_rows.append(
            MultiCodeRow(code_count=code_count, compressed_ratio=total / total_original)
        )

    # --- Extension B: associativity -------------------------------------
    associativity_rows = []
    for program in ("espresso", "nasa7"):
        trace = load(program).run().trace.addresses
        for cache_bytes in (512, 1024, 4096):
            associativity_rows.append(
                AssociativityRow(
                    program=program,
                    cache_bytes=cache_bytes,
                    miss_direct=simulate_trace(trace, cache_bytes).miss_rate,
                    miss_2way=simulate_trace_associative(
                        trace, cache_bytes, ways=2
                    ).miss_rate,
                    miss_4way=simulate_trace_associative(
                        trace, cache_bytes, ways=4
                    ).miss_rate,
                )
            )

    # --- Extension C: compressed demand paging ---------------------------
    workload = load("espresso")
    store = CompressedPageStore(workload.text, standard_code())
    addresses = workload.run().trace.addresses
    paging_rows = []
    for memory in ("eprom", "burst_eprom", "sc_dram"):
        simulator = PagedMemorySimulator(store, frames=16, memory=memory)
        compressed, baseline = simulator.compare(addresses)
        paging_rows.append(
            PagingRow(
                memory=memory,
                faults=compressed.faults,
                compressed_fault_cycles=compressed.fault_cycles,
                baseline_fault_cycles=baseline.fault_cycles,
                storage_ratio=compressed.storage_bytes / baseline.storage_bytes,
            )
        )

    return ExtensionsResult(
        multicode_rows=tuple(multicode_rows),
        associativity_rows=tuple(associativity_rows),
        paging_rows=tuple(paging_rows),
    )
