"""Ablation studies for the design choices the paper calls out.

Three knobs the paper discusses but does not tabulate:

* **LAT packing** (Section 3.2) — the packed 8-byte entry (3.125 %
  overhead) vs the naive 4-byte pointer per line (12.5 %).
* **Block alignment** (Figure 1) — byte-aligned blocks compress slightly
  better; word alignment simplifies the fetch hardware.
* **Decoder rate** (Sections 3.4 / 5) — the 2-bytes-per-cycle decoder is
  matched to a 32-bit bus; the paper flags faster decoders as future
  work.  We sweep 1, 2, and 4 bytes per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ccrp.decoder import DecoderModel
from repro.compression.block import BYTE_ALIGNED, WORD_ALIGNED
from repro.core.config import SystemConfig
from repro.core.artifacts import get_study
from repro.experiments.formats import percent, render_table


@dataclass(frozen=True)
class LATAblationRow:
    program: str
    packed_overhead: float
    naive_overhead: float


@dataclass(frozen=True)
class AlignmentAblationRow:
    program: str
    byte_aligned_ratio: float
    word_aligned_ratio: float


@dataclass(frozen=True)
class DecoderAblationRow:
    program: str
    memory: str
    relative_performance: dict[int, float]  # bytes/cycle -> rel perf


@dataclass(frozen=True)
class AblationResult:
    lat_rows: tuple[LATAblationRow, ...]
    alignment_rows: tuple[AlignmentAblationRow, ...]
    decoder_rows: tuple[DecoderAblationRow, ...]

    def render(self) -> str:
        parts = [
            render_table(
                "Ablation A: LAT storage overhead (packed entry vs naive pointers)",
                ("Program", "Packed (8B/8 lines)", "Naive (4B/line)"),
                [
                    (row.program, percent(row.packed_overhead), percent(row.naive_overhead))
                    for row in self.lat_rows
                ],
            ),
            render_table(
                "Ablation B: compressed size, byte vs word aligned blocks (incl. LAT)",
                ("Program", "Byte aligned", "Word aligned"),
                [
                    (
                        row.program,
                        percent(row.byte_aligned_ratio, 1),
                        percent(row.word_aligned_ratio, 1),
                    )
                    for row in self.alignment_rows
                ],
            ),
            render_table(
                "Ablation C: relative performance vs decoder rate (1 KB cache)",
                ("Program", "Memory", "1 B/cycle", "2 B/cycle", "4 B/cycle"),
                [
                    (
                        row.program,
                        row.memory,
                        row.relative_performance[1],
                        row.relative_performance[2],
                        row.relative_performance[4],
                    )
                    for row in self.decoder_rows
                ],
            ),
        ]
        return "\n\n".join(parts)


def run_ablations(
    programs: tuple[str, ...] = ("espresso", "nasa7", "fpppp"),
) -> AblationResult:
    """Run all three ablations."""
    lat_rows = []
    alignment_rows = []
    decoder_rows = []
    for program in programs:
        byte_study = get_study(program, block_alignment=BYTE_ALIGNED)
        word_study = get_study(program, block_alignment=WORD_ALIGNED)
        lat = byte_study.image.lat
        original = byte_study.image.original_size
        lat_rows.append(
            LATAblationRow(
                program=program,
                packed_overhead=lat.storage_bytes / original,
                naive_overhead=lat.naive_overhead_bytes / original,
            )
        )
        alignment_rows.append(
            AlignmentAblationRow(
                program=program,
                byte_aligned_ratio=byte_study.image.total_ratio_with_lat,
                word_aligned_ratio=word_study.image.total_ratio_with_lat,
            )
        )
        for memory in ("eprom", "burst_eprom"):
            relative = {}
            for rate in (1, 2, 4):
                config = SystemConfig(
                    cache_bytes=1024, memory=memory, decoder=DecoderModel(bytes_per_cycle=rate)
                )
                relative[rate] = byte_study.metrics(config).relative_execution_time
            decoder_rows.append(
                DecoderAblationRow(
                    program=program, memory=memory, relative_performance=relative
                )
            )
    return AblationResult(
        lat_rows=tuple(lat_rows),
        alignment_rows=tuple(alignment_rows),
        decoder_rows=tuple(decoder_rows),
    )
