"""Fetch-line predictors for the prefetching refill engine.

Two predictors drive the speculative refill policies:

* **next-line** — the fall-through cache line (``line + 1``), implicit in
  the policy itself (no state to train);
* **branch-target buffer** (:class:`StaticBTB`) — a small direct-mapped
  table mapping a cache line to the line a control transfer inside it
  redirects fetch to.  It is trained *statically* from the program's
  control-flow-graph edges (:func:`repro.isa.cfg.static_transfer_targets`)
  rather than online from retired branches: the CCRP's compressed image
  is read-only firmware, so the full edge set is known at image-build
  time and a deterministic static fill keeps the exact replay and the
  vectorized timeline trivially in agreement.  Hardware cost is still
  honest — the table is capacity-bounded and direct-mapped, so two hot
  lines that collide in the same slot evict each other exactly as a real
  BTB would (the *later* static line wins, deterministically).

A line can hold several transfers; the BTB keeps the **last** one with a
statically-known target, the transfer that redirects fetch *out* of the
line when the earlier ones fall through.  Targets inside the same line
or in the fall-through line predict nothing the next-line probe does not
already cover, so they are not installed.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.isa.cfg import static_transfer_targets
from repro.isa.instruction import Instruction

#: Default BTB capacity (lines); small like the CLB, per Section 3.3's
#: "modest additional hardware" budget.
DEFAULT_BTB_ENTRIES = 64


class StaticBTB:
    """Capacity-bounded, direct-mapped line-to-target-line predictor.

    Args:
        entries: Table capacity (power of two recommended; any positive
            count works — slots are ``line % entries``).

    Use :meth:`train` per edge or :func:`build_btb` to fill one from a
    decoded program.
    """

    def __init__(self, entries: int = DEFAULT_BTB_ENTRIES) -> None:
        if entries < 1:
            raise ConfigurationError(f"BTB needs at least one entry, got {entries}")
        self.entries = entries
        self._tags: dict[int, int] = {}
        self._targets: dict[int, int] = {}

    def train(self, line: int, target_line: int) -> None:
        """Install ``line -> target_line`` (evicting any slot conflict)."""
        slot = line % self.entries
        self._tags[slot] = line
        self._targets[slot] = target_line

    def predict(self, line: int) -> int | None:
        """Predicted target line for ``line``, or ``None`` on a tag miss."""
        slot = line % self.entries
        if self._tags.get(slot) != line:
            return None
        return self._targets[slot]

    @property
    def occupancy(self) -> int:
        """Number of valid slots currently held."""
        return len(self._tags)


def build_btb(
    instructions: tuple[Instruction, ...],
    text_base: int = 0,
    line_size: int = 32,
    entries: int = DEFAULT_BTB_ENTRIES,
) -> StaticBTB:
    """Train a :class:`StaticBTB` from a program's static CFG edges.

    Edges are installed in static program order, so within one line the
    last transfer wins its slot, and across colliding lines the later
    static line wins — both deterministic.  Edges whose target lands in
    the same line or the next line are skipped (covered by the demand
    fetch and the next-line probe respectively).
    """
    shift = line_size.bit_length() - 1
    btb = StaticBTB(entries)
    for address, target in static_transfer_targets(instructions, text_base):
        line = address >> shift
        target_line = target >> shift
        if target_line in (line, line + 1):
            continue
        btb.train(line, target_line)
    return btb
