"""Branch-aware prefetching refill engine (see ``docs/modeling_notes.md`` §15).

The paper's CCRP charges every instruction-cache miss the full
sequential Huffman decode latency.  This package models the front end a
real implementation would pair with the decoder: a next-line predictor
and a small static branch-target buffer speculatively decompress the
lines fetch is likely to want next into a bounded prefetch buffer, so a
later demand miss pays only the *residual* decode cycles — zero when
the speculative decode finished in the shadow of execution.

Exports:

* :data:`~repro.prefetch.engine.FETCH_POLICIES` /
  :func:`~repro.prefetch.engine.validate_fetch_policy` — the selectable
  policies (``demand``, ``nextline``, ``btb``);
* :class:`~repro.prefetch.engine.PrefetchingFetchUnit` — the stateful
  exact front end (drop-in for the pipeline datapath replay);
* :func:`~repro.prefetch.timeline.simulate_fetch_stream` /
  :class:`~repro.prefetch.timeline.FetchReplay` — the vectorized
  whole-trace replay, byte-identical to the exact unit;
* :class:`~repro.prefetch.predictor.StaticBTB` /
  :func:`~repro.prefetch.predictor.build_btb` — the CFG-trained
  branch-target buffer;
* :class:`~repro.prefetch.buffer.PrefetchBuffer` — the bounded
  speculative-refill buffer.
"""

from repro.prefetch.buffer import PrefetchBuffer, PrefetchEntry
from repro.prefetch.engine import (
    FETCH_POLICIES,
    PrefetchCore,
    PrefetchingFetchUnit,
    build_core,
    validate_fetch_policy,
)
from repro.prefetch.predictor import DEFAULT_BTB_ENTRIES, StaticBTB, build_btb
from repro.prefetch.timeline import FetchReplay, simulate_fetch_stream

__all__ = [
    "DEFAULT_BTB_ENTRIES",
    "FETCH_POLICIES",
    "FetchReplay",
    "PrefetchBuffer",
    "PrefetchCore",
    "PrefetchEntry",
    "PrefetchingFetchUnit",
    "StaticBTB",
    "build_btb",
    "build_core",
    "simulate_fetch_stream",
    "validate_fetch_policy",
]
