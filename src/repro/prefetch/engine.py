"""The prefetching refill engine: policies, accounting, exact fetch unit.

Model
-----

The paper charges every instruction-cache miss the *full* sequential
Huffman decompression latency.  A real front end would overlap most of
that with execution: while the pipeline executes the line it just
fetched, the refill engine can speculatively start decompressing the
lines fetch is likely to want next.  This module models that overlap
with three selectable policies:

* ``demand`` — today's behaviour, bit-for-bit: misses freeze the
  pipeline for the full refill (plus a LAT read on a CLB miss);
* ``nextline`` — each miss to line *L*, once serviced, starts a
  speculative refill of the fall-through line *L + 1*;
* ``btb`` — next-line plus a second probe of a small branch-target
  buffer (:class:`~repro.prefetch.predictor.StaticBTB`): if a control
  transfer in *L* redirects fetch to a known line, that line is
  prefetched too.

The shadow clock
----------------

Prefetch timing needs a notion of *when* a later demand miss arrives
relative to the speculative decode it may hit.  The engine keeps a
**shadow clock** in the fetch domain: every fetch advances it one cycle
(the IF slot) and every fetch freeze advances it by the stall.  Hazard
and branch stalls are deliberately *not* counted — the decoder gets
strictly less shadow time than it really would, so the hiding the model
reports is a lower bound (documented in ``docs/modeling_notes.md`` §15).

A demand miss that hits a prefetch-buffer entry pays only the
**residual**: ``max(0, finish_time - now)``, zero if the speculative
decode finished in the shadow of execution.  If the residual exceeds
what a fresh demand decode would cost (the prefetch is still queued
behind others on the single decoder port), the front end abandons it and
decodes on demand — so a covered miss never costs more than an uncovered
one.  Wrong-path prefetches are charged honestly: their bus/LAT traffic
is accounted, their buffer slot evicts under pressure, and with
``contention=True`` an in-flight speculative decode makes a demand miss
wait for the shared decoder port.

Cache semantics are untouched: prefetched lines sit in a bounded
side-buffer (:class:`~repro.prefetch.buffer.PrefetchBuffer`), a buffer
hit still counts as a cache miss and fills the cache exactly as demand
would, so the miss stream is identical across policies — the property
the vectorized timeline (:mod:`repro.prefetch.timeline`) builds on.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.ccrp.clb import CLB
from repro.ccrp.refill import RefillEngine
from repro.errors import ConfigurationError
from repro.lat.entry import ENTRY_BYTES, LINES_PER_ENTRY
from repro.memsys.models import MemoryModel
from repro.pipeline.frontend import FetchUnit
from repro.prefetch.buffer import PrefetchBuffer, PrefetchEntry
from repro.prefetch.predictor import StaticBTB

#: The selectable fetch policies.
FETCH_POLICIES = ("demand", "nextline", "btb")


def validate_fetch_policy(name: str) -> str:
    """Check a fetch-policy name, raising :class:`ConfigurationError`."""
    if name not in FETCH_POLICIES:
        raise ConfigurationError(
            f"unknown fetch policy {name!r}; choose from {FETCH_POLICIES}"
        )
    return name


class PrefetchCore:
    """The per-miss state machine shared by both timing backends.

    The exact replay (:class:`PrefetchingFetchUnit`) drives it one miss
    at a time with a per-access shadow clock; the vectorized timeline
    (:func:`repro.prefetch.timeline.simulate_fetch_stream`) drives it
    over the extracted miss events with arrival times computed by
    vectorized position arithmetic.  Both see the same state machine, so
    their agreement reduces to the (property-tested) equivalence of the
    two clock constructions.

    Args:
        policy: One of :data:`FETCH_POLICIES`.
        depth: Prefetch-buffer capacity (speculative refills in flight
            or complete).
        line_cycles: Full refill cycles of one global cache line.
        line_bytes: Bus bytes a refill of one global line fetches.
        valid_line: Whether a global line may be prefetched (inside the
            image / text segment).
        clb: CLB probed by demand *and* speculative refills (shared
            structure, so prefetch probes train and pollute it exactly
            as hardware would); ``None`` models a perfect CLB.
        lat_penalty: Cycles of one LAT-entry read (charged on CLB miss).
        btb: Branch-target predictor (``btb`` policy only).
        contention: Model a single shared decoder port — demand decodes
            wait for in-flight speculative decodes.  Off by default (the
            optimistic dual-port assumption the invariant tests pin).
    """

    def __init__(
        self,
        policy: str,
        depth: int,
        line_cycles: Callable[[int], int],
        line_bytes: Callable[[int], int],
        valid_line: Callable[[int], bool],
        clb: CLB | None = None,
        lat_penalty: int = 0,
        btb: StaticBTB | None = None,
        contention: bool = False,
    ) -> None:
        validate_fetch_policy(policy)
        if policy == "btb" and btb is None:
            raise ConfigurationError("the btb policy needs a branch-target buffer")
        self.policy = policy
        self.buffer = PrefetchBuffer(depth)
        self._line_cycles = line_cycles
        self._line_bytes = line_bytes
        self._valid_line = valid_line
        self.clb = clb
        self.lat_penalty = lat_penalty
        self.btb = btb
        self.contention = contention
        self._decoder_free = 0
        self.reset_counters()

    def reset_counters(self) -> None:
        self.issued = 0
        self.useful = 0
        self.useless = 0
        self.partial = 0
        self.covered_stall_cycles = 0
        self.clb_penalty_cycles = 0
        self.traffic_bytes = 0
        self.wasted_traffic_bytes = 0

    def reset(self) -> None:
        """Empty the buffer and decoder queue and clear statistics."""
        self.buffer.clear()
        self._decoder_free = 0
        if self.clb is not None:
            self.clb.reset()
        self.reset_counters()

    # ------------------------------------------------------------------
    # The state machine
    # ------------------------------------------------------------------

    def _probe_clb(self, line: int) -> int:
        """Probe the CLB for ``line``'s LAT entry; returns the penalty."""
        if self.clb is None:
            return 0
        if self.clb.access(line // LINES_PER_ENTRY):
            return 0
        self.traffic_bytes += ENTRY_BYTES
        return self.lat_penalty

    def on_miss(self, now: int, line: int, is_resident: Callable[[int], bool]) -> int:
        """Service one demand miss at shadow time ``now``; returns stall.

        ``is_resident`` answers whether a *predicted* line is already in
        the instruction cache (such prefetches are suppressed); the
        caller updates the cache with the missing line itself, exactly
        as the demand policy would.
        """
        entry = self.buffer.pop(line)
        penalty = self._probe_clb(line)
        self.clb_penalty_cycles += penalty
        demand_cost = self._line_cycles(line) + penalty
        if entry is not None:
            residual = entry.finish_time - now
            if residual <= demand_cost:
                # Covered (fully or partially): pay only what is left of
                # the speculative decode; the line's bytes were already
                # fetched at issue, so no new line traffic.
                self.useful += 1
                stall = max(0, residual)
                if stall:
                    self.partial += 1
                self.covered_stall_cycles += demand_cost - stall
                self._issue_prefetches(now + stall, line, is_resident)
                return stall
            # Still queued behind other speculative work: abandon it and
            # decode on demand (a covered miss never costs more than an
            # uncovered one).  The speculative fetch was wasted traffic.
            self.useless += 1
            self.wasted_traffic_bytes += self._entry_traffic(entry)
        stall = demand_cost
        if self.contention:
            stall += max(0, self._decoder_free - now)
            self._decoder_free = now + stall
        self.traffic_bytes += self._line_bytes(line)
        self._issue_prefetches(now + stall, line, is_resident)
        return stall

    def _entry_traffic(self, entry: PrefetchEntry) -> int:
        return self._line_bytes(entry.line)

    def _predictions(self, line: int) -> list[int]:
        if self.policy == "demand":
            return []
        predictions = [line + 1]
        if self.policy == "btb":
            target = self.btb.predict(line)
            if target is not None and target not in (line, line + 1):
                predictions.append(target)
        return predictions

    def _issue_prefetches(
        self, done: int, line: int, is_resident: Callable[[int], bool]
    ) -> None:
        """Start speculative refills once the demand miss completes."""
        for predicted in self._predictions(line):
            if not self._valid_line(predicted):
                continue
            if predicted in self.buffer or is_resident(predicted):
                continue
            penalty = self._probe_clb(predicted)
            duration = self._line_cycles(predicted) + penalty
            start = max(done, self._decoder_free)
            finish = start + duration
            self._decoder_free = finish
            self.traffic_bytes += self._line_bytes(predicted)
            evicted = self.buffer.insert(
                PrefetchEntry(line=predicted, issue_time=done, finish_time=finish)
            )
            self.issued += 1
            if evicted is not None:
                self.useless += 1
                self.wasted_traffic_bytes += self._entry_traffic(evicted)

    # ------------------------------------------------------------------
    # Accounting views
    # ------------------------------------------------------------------

    @property
    def in_flight_at_exit(self) -> int:
        """Issued prefetches still sitting in the buffer."""
        return len(self.buffer)

    @property
    def clb_hits(self) -> int:
        return self.clb.hits if self.clb is not None else 0

    @property
    def clb_misses(self) -> int:
        return self.clb.misses if self.clb is not None else 0

    def counters(self) -> dict[str, int]:
        """The prefetch counter block (reconciles: issued == useful +
        useless + in_flight_at_exit)."""
        return {
            "issued": self.issued,
            "useful": self.useful,
            "useless": self.useless,
            "partial": self.partial,
            "in_flight_at_exit": self.in_flight_at_exit,
            "covered_stall_cycles": self.covered_stall_cycles,
            "wasted_traffic_bytes": self.wasted_traffic_bytes,
        }


def build_core(
    policy: str,
    depth: int,
    memory: MemoryModel,
    line_size: int,
    refill: RefillEngine | None = None,
    clb: CLB | None = None,
    btb: StaticBTB | None = None,
    contention: bool = False,
    prefetch_bounds: tuple[int, int] | None = None,
) -> PrefetchCore:
    """Configure a :class:`PrefetchCore` for one machine model.

    Both timing backends build their core here, so the per-line cost
    and validity rules cannot drift between the exact replay and the
    vectorized timeline.
    """
    if refill is not None:
        base_line = refill.image.text_base // line_size
        cycles = refill.ccrp_refill_cycles
        bytes_table = refill.fetched_bytes_per_line
        line_cycles = lambda g: int(cycles[g - base_line])  # noqa: E731
        line_bytes = lambda g: int(bytes_table[g - base_line])  # noqa: E731
        valid = lambda g: 0 <= g - base_line < len(cycles)  # noqa: E731
        lat_penalty = refill.lat_fetch_cycles
    else:
        burst = memory.bytes_read_cycles(line_size)
        fetched = memory.beats_for_bytes(line_size) * memory.bus_bytes
        line_cycles = lambda g: burst  # noqa: E731
        line_bytes = lambda g: fetched  # noqa: E731
        if prefetch_bounds is not None:
            base_line, count = prefetch_bounds
            valid = lambda g: 0 <= g - base_line < count  # noqa: E731
        else:
            valid = lambda g: g >= 0  # noqa: E731
        lat_penalty = 0
    return PrefetchCore(
        policy=policy,
        depth=depth,
        line_cycles=line_cycles,
        line_bytes=line_bytes,
        valid_line=valid,
        clb=clb,
        lat_penalty=lat_penalty,
        btb=btb,
        contention=contention,
    )


class PrefetchingFetchUnit(FetchUnit):
    """Stateful prefetching front end — the exact (golden) replay.

    A drop-in :class:`~repro.pipeline.frontend.FetchUnit` for
    :func:`~repro.pipeline.datapath.simulate_pipeline`: same
    ``fetch(address) -> freeze cycles`` contract, plus the shadow clock
    and prefetch machinery of :class:`PrefetchCore`.  With
    ``policy="demand"`` it is byte-identical to the plain unit
    (property-tested).

    Args:
        cache_bytes / memory / line_size / refill / clb: As the base
            class.  ``refill=None`` models the standard machine — a
            prefetch then hides plain burst latency instead of decode
            time.
        policy: One of :data:`FETCH_POLICIES`.
        prefetch_depth: Prefetch-buffer capacity.
        btb: Branch-target predictor (required for ``policy="btb"``).
        contention: Shared-decoder-port model (see :class:`PrefetchCore`).
        prefetch_bounds: ``(base_line, line_count)`` limiting which
            global lines may be prefetched when ``refill`` is ``None``
            (the compressed image provides the bounds otherwise).
    """

    def __init__(
        self,
        cache_bytes: int,
        memory: MemoryModel | str,
        line_size: int = 32,
        refill: RefillEngine | None = None,
        clb: CLB | None = None,
        policy: str = "demand",
        prefetch_depth: int = 4,
        btb: StaticBTB | None = None,
        contention: bool = False,
        prefetch_bounds: tuple[int, int] | None = None,
    ) -> None:
        super().__init__(
            cache_bytes, memory, line_size=line_size, refill=refill, clb=clb
        )
        self._clock = 0
        self.core = build_core(
            policy,
            prefetch_depth,
            self.memory,
            line_size,
            refill=refill,
            clb=clb,
            btb=btb,
            contention=contention,
            prefetch_bounds=prefetch_bounds,
        )

    def _is_resident(self, line: int) -> bool:
        return self._resident[line % self.num_sets] == line

    def fetch(self, address: int) -> int:
        """One instruction fetch; returns the freeze cycles it caused."""
        line = address >> self._line_shift
        set_index = line % self.num_sets
        self.accesses += 1
        arrival = self._clock
        if self._resident[set_index] == line:
            self._clock = arrival + 1
            return 0
        self._resident[set_index] = line
        self.misses += 1
        stall = self.core.on_miss(arrival, line, self._is_resident)
        self.clb_penalty_cycles = self.core.clb_penalty_cycles
        self._clock = arrival + 1 + stall
        return stall

    def reset(self) -> None:
        """Empty the cache, buffer, CLB, and clocks; clear statistics."""
        super().reset()
        self._clock = 0
        self.core.reset()

    def counters(self) -> dict[str, int]:
        """Front-end counters including the prefetch block."""
        report = super().counters()
        report.update(
            {f"prefetch_{key}": value for key, value in self.core.counters().items()}
        )
        report["traffic_bytes"] = self.core.traffic_bytes
        return report
