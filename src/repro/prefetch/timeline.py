"""Vectorized replay of the prefetching fetch path over a whole trace.

Driving :class:`~repro.prefetch.engine.PrefetchingFetchUnit` one access
at a time costs a Python loop per dynamic instruction — minutes per
workload.  This module exploits the prefetch buffer's key invariant (a
buffer hit still fills the cache exactly as a demand miss would, so the
*miss stream is policy-independent*) to reduce the work to the miss
events:

1. the per-access miss mask comes from the same vectorized
   direct-mapped kernel the demand timeline uses
   (:func:`repro.pipeline.frontend.miss_mask`);
2. the shadow-clock arrival of miss *i* at access position ``p_i`` is
   ``p_i + sum(stalls before i)`` — each hit advances the clock exactly
   one cycle, so hits never need to be walked;
3. the per-miss state machine (:class:`~repro.prefetch.engine.PrefetchCore`)
   is the *same object* both backends run, so agreement with the exact
   replay reduces to the equivalence of the two clock constructions —
   which the property tests and ``benchmarks/bench_frontend.py --check``
   pin byte-for-byte.

Typical miss streams are thousands of events against millions of
accesses, so the remaining Python loop is ~10³ shorter than the exact
replay's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.direct_mapped import _check_geometry
from repro.ccrp.clb import CLB
from repro.ccrp.refill import RefillEngine
from repro.memsys.models import MemoryModel, get_memory_model
from repro.pipeline.frontend import FetchUnit, miss_mask
from repro.prefetch.engine import build_core
from repro.prefetch.predictor import StaticBTB


@dataclass(frozen=True)
class FetchReplay:
    """Everything one fetch-path replay produced, backend-agnostic.

    Instances from the exact unit and the vectorized timeline compare
    equal field-for-field when the backends agree — the byte-identity
    check the tests, bench gate, and prefetch study all run.

    Attributes:
        policy: Fetch policy that produced the numbers.
        accesses / misses: Fetch and cache-miss counts.
        fetch_stall_cycles: Total front-end freeze cycles.
        clb_penalty_cycles: The demand-charged LAT-read share of the
            stalls (speculative LAT reads are hidden, not freezes).
        clb_hits / clb_misses: CLB probe outcomes (demand + prefetch).
        traffic_bytes: Instruction-memory bytes fetched (blocks + LAT).
        issued / useful / useless / partial: Prefetch outcome counters
            (``issued == useful + useless + in_flight_at_exit``;
            ``partial`` is the subset of ``useful`` with a nonzero
            residual).
        in_flight_at_exit: Prefetches still buffered at end of trace.
        covered_stall_cycles: Demand-freeze cycles the prefetcher hid.
        wasted_traffic_bytes: Bytes fetched by prefetches that were
            evicted or abandoned without covering a miss.
    """

    policy: str
    accesses: int
    misses: int
    fetch_stall_cycles: int
    clb_penalty_cycles: int
    clb_hits: int
    clb_misses: int
    traffic_bytes: int
    issued: int
    useful: int
    useless: int
    partial: int
    in_flight_at_exit: int
    covered_stall_cycles: int
    wasted_traffic_bytes: int

    def prefetch_counters(self) -> dict[str, int]:
        """The prefetch counter block (for metrics reports)."""
        return {
            "issued": self.issued,
            "useful": self.useful,
            "useless": self.useless,
            "partial": self.partial,
            "in_flight_at_exit": self.in_flight_at_exit,
            "covered_stall_cycles": self.covered_stall_cycles,
            "wasted_traffic_bytes": self.wasted_traffic_bytes,
        }

    @classmethod
    def from_core(
        cls, core, accesses: int, misses: int, stalls: int
    ) -> "FetchReplay":
        """Snapshot a :class:`~repro.prefetch.engine.PrefetchCore`."""
        return cls(
            policy=core.policy,
            accesses=accesses,
            misses=misses,
            fetch_stall_cycles=stalls,
            clb_penalty_cycles=core.clb_penalty_cycles,
            clb_hits=core.clb_hits,
            clb_misses=core.clb_misses,
            traffic_bytes=core.traffic_bytes,
            issued=core.issued,
            useful=core.useful,
            useless=core.useless,
            partial=core.partial,
            in_flight_at_exit=core.in_flight_at_exit,
            covered_stall_cycles=core.covered_stall_cycles,
            wasted_traffic_bytes=core.wasted_traffic_bytes,
        )

    @classmethod
    def from_unit(cls, unit: FetchUnit, fetch_stall_cycles: int) -> "FetchReplay":
        """Snapshot a (possibly prefetching) stateful unit's statistics."""
        core = getattr(unit, "core", None)
        return cls(
            policy=core.policy if core is not None else "demand",
            accesses=unit.accesses,
            misses=unit.misses,
            fetch_stall_cycles=fetch_stall_cycles,
            clb_penalty_cycles=unit.clb_penalty_cycles,
            clb_hits=unit.clb_hits,
            clb_misses=unit.clb_misses,
            traffic_bytes=core.traffic_bytes if core is not None else 0,
            issued=core.issued if core is not None else 0,
            useful=core.useful if core is not None else 0,
            useless=core.useless if core is not None else 0,
            partial=core.partial if core is not None else 0,
            in_flight_at_exit=core.in_flight_at_exit if core is not None else 0,
            covered_stall_cycles=core.covered_stall_cycles if core is not None else 0,
            wasted_traffic_bytes=core.wasted_traffic_bytes if core is not None else 0,
        )


def simulate_fetch_stream(
    addresses: np.ndarray,
    cache_bytes: int,
    line_size: int,
    memory: MemoryModel | str,
    refill: RefillEngine | None = None,
    clb: CLB | None = None,
    policy: str = "demand",
    prefetch_depth: int = 4,
    btb: StaticBTB | None = None,
    contention: bool = False,
    prefetch_bounds: tuple[int, int] | None = None,
) -> FetchReplay:
    """Replay a whole fetch-address stream under one policy, vectorized.

    Same machine-model arguments as
    :class:`~repro.prefetch.engine.PrefetchingFetchUnit`; the result is
    byte-identical to driving that unit access-by-access over
    ``addresses``.
    """
    memory = get_memory_model(memory)
    num_sets = _check_geometry(cache_bytes, line_size)
    core = build_core(
        policy,
        prefetch_depth,
        memory,
        line_size,
        refill=refill,
        clb=clb,
        btb=btb,
        contention=contention,
        prefetch_bounds=prefetch_bounds,
    )
    addresses = np.asarray(addresses)
    accesses = len(addresses)
    if accesses == 0:
        return FetchReplay.from_core(core, accesses=0, misses=0, stalls=0)

    mask = miss_mask(addresses, cache_bytes, line_size)
    shift = line_size.bit_length() - 1
    positions = np.nonzero(mask)[0]
    miss_lines = (np.asarray(addresses, dtype=np.int64) >> shift)[positions]

    resident: list[int | None] = [None] * num_sets

    def is_resident(line: int) -> bool:
        return resident[line % num_sets] == line

    total_stall = 0
    for position, line in zip(positions.tolist(), miss_lines.tolist()):
        # Same update order as the stateful unit: the missing line is
        # resident by the time the core suppresses redundant prefetches.
        resident[line % num_sets] = line
        total_stall += core.on_miss(position + total_stall, line, is_resident)

    return FetchReplay.from_core(
        core, accesses=accesses, misses=len(positions), stalls=total_stall
    )
