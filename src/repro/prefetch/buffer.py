"""The bounded prefetch buffer.

Prefetched lines live *beside* the instruction cache, not in it — the
classic stream-buffer arrangement.  A demand miss that finds its line
here still counts as a cache miss (the cache genuinely missed) and then
fills the cache exactly as a demand refill would, so the cache's
resident-set evolution — and therefore the miss stream itself — is
byte-identical to the plain demand policy.  Only the *cost* of each miss
changes.  That invariant is what lets the vectorized timeline reuse the
demand miss stream and is asserted by the property tests.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PrefetchEntry:
    """One speculative refill in flight (or complete, awaiting use).

    Attributes:
        line: Global cache-line number being decompressed.
        issue_time: Shadow-clock cycle the prefetch was issued.
        finish_time: Shadow-clock cycle its last byte is decoded
            (``issue_time`` + any decoder queueing + the full refill).
    """

    line: int
    issue_time: int
    finish_time: int


class PrefetchBuffer:
    """FIFO buffer of at most ``depth`` speculative refills.

    Inserting into a full buffer evicts the oldest entry (returned so
    the engine can count it as a useless prefetch); a demand hit pops
    its entry.  Lookups are by global line number.
    """

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ConfigurationError(
                f"prefetch buffer needs at least one entry, got {depth}"
            )
        self.depth = depth
        self._entries: OrderedDict[int, PrefetchEntry] = OrderedDict()

    def __contains__(self, line: int) -> bool:
        return line in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def pop(self, line: int) -> PrefetchEntry | None:
        """Remove and return the entry for ``line`` (None if absent)."""
        return self._entries.pop(line, None)

    def insert(self, entry: PrefetchEntry) -> PrefetchEntry | None:
        """Add ``entry``; returns the evicted oldest entry if full."""
        evicted = None
        if len(self._entries) >= self.depth:
            _, evicted = self._entries.popitem(last=False)
        self._entries[entry.line] = entry
        return evicted

    def clear(self) -> None:
        self._entries.clear()
