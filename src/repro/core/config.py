"""System configuration for the trace-driven experiments."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.cache.datacache import DataCacheModel
from repro.ccrp.decoder import DecoderModel
from repro.compression.block import BYTE_ALIGNED, WORD_ALIGNED

#: The selectable timing backends (see ``docs/modeling_notes.md``).
TIMING_BACKENDS = ("additive", "pipeline")

_default_timing = "additive"


def validate_timing(name: str) -> str:
    """Check a timing-backend name, raising :class:`ConfigurationError`."""
    if name not in TIMING_BACKENDS:
        raise ConfigurationError(
            f"unknown timing backend {name!r}; choose from {TIMING_BACKENDS}"
        )
    return name


def set_default_timing(name: str) -> None:
    """Set the backend new :class:`SystemConfig` objects default to.

    The experiment runner's ``--timing`` flag routes through this so
    every experiment — which each build their own configs — switches
    backend without threading a parameter through all of them.
    """
    global _default_timing
    _default_timing = validate_timing(name)


def default_timing() -> str:
    """The process-wide default timing backend."""
    return _default_timing


@dataclass(frozen=True)
class SystemConfig:
    """One point in the paper's design space.

    Defaults reproduce the proposed implementation of Section 3: 1 KB
    direct-mapped I-cache with 32-byte lines, 16-entry CLB, byte-aligned
    compressed blocks, a 2-byte-per-cycle hard-wired decoder, and no data
    cache (every data access a 4-cycle random DRAM read).

    Attributes:
        cache_bytes: Instruction-cache capacity (256-4096 in the paper).
        line_size: Cache-line size in bytes.
        memory: Instruction-memory model name (``"eprom"``,
            ``"burst_eprom"``, ``"sc_dram"``) or a
            :class:`~repro.memsys.models.MemoryModel`.
        clb_entries: CLB capacity in LAT entries.
        decoder: Refill-decoder timing model.
        data_cache: Analytic data-cache model (miss rate 1.0 = none).
        block_alignment: Compressed-block alignment (1 = byte, 4 = word).
        timing: Timing backend — ``"additive"`` (the paper's folded-in
            pixie stalls) or ``"pipeline"`` (the cycle-accurate 5-stage
            model of :mod:`repro.pipeline`).  Defaults to the
            process-wide setting (:func:`set_default_timing`).
        critical_word_first: Resume the pipeline on critical-word
            arrival during refills (modelled extension; requires the
            pipeline backend).
        integrity: Refill-time integrity policy (``"strict"``,
            ``"detect"``, ``"off"``).  Any policy but ``off`` charges the
            per-line CRC table (3.125 %, like the LAT) to the reported
            compression ratio; see :mod:`repro.faults.integrity`.
        fetch_policy: Front-end refill policy — ``"demand"`` (the
            paper's machine), ``"nextline"`` (speculatively decompress
            the fall-through line on every miss), or ``"btb"``
            (next-line plus a CFG-trained static branch-target buffer).
            Non-demand policies require the pipeline backend and are
            mutually exclusive with ``critical_word_first`` (the
            prefetch buffer holds whole decoded lines); see
            :mod:`repro.prefetch` and ``docs/modeling_notes.md`` §15.
        prefetch_depth: Capacity of the prefetch buffer in lines
            (ignored under the demand policy).
    """

    cache_bytes: int = 1024
    line_size: int = 32
    memory: object = "eprom"
    clb_entries: int = 16
    decoder: DecoderModel = field(default_factory=DecoderModel)
    data_cache: DataCacheModel = field(default_factory=DataCacheModel)
    block_alignment: int = BYTE_ALIGNED
    timing: str = field(default_factory=default_timing)
    critical_word_first: bool = False
    integrity: str = "off"
    fetch_policy: str = "demand"
    prefetch_depth: int = 4

    def __post_init__(self) -> None:
        if self.cache_bytes < self.line_size:
            raise ConfigurationError(
                f"cache of {self.cache_bytes} B cannot hold a {self.line_size} B line"
            )
        if self.block_alignment not in (BYTE_ALIGNED, WORD_ALIGNED):
            raise ConfigurationError(
                f"block alignment must be 1 or 4, got {self.block_alignment}"
            )
        if self.clb_entries < 1:
            raise ConfigurationError("CLB needs at least one entry")
        validate_timing(self.timing)
        if self.critical_word_first and self.timing != "pipeline":
            raise ConfigurationError(
                "critical-word-first refill needs the pipeline timing backend"
            )
        from repro.faults.integrity import validate_integrity_policy

        validate_integrity_policy(self.integrity)
        from repro.prefetch import validate_fetch_policy

        validate_fetch_policy(self.fetch_policy)
        if self.fetch_policy != "demand":
            if self.timing != "pipeline":
                raise ConfigurationError(
                    "prefetching fetch policies need the pipeline timing backend"
                )
            if self.critical_word_first:
                raise ConfigurationError(
                    "prefetching decodes whole lines; it cannot be combined "
                    "with critical-word-first refill"
                )
        if self.prefetch_depth < 1:
            raise ConfigurationError("prefetch buffer needs at least one entry")

    def with_options(self, **changes) -> "SystemConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)
