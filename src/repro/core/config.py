"""System configuration for the trace-driven experiments."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.cache.datacache import DataCacheModel
from repro.ccrp.decoder import DecoderModel
from repro.compression.block import BYTE_ALIGNED, WORD_ALIGNED


@dataclass(frozen=True)
class SystemConfig:
    """One point in the paper's design space.

    Defaults reproduce the proposed implementation of Section 3: 1 KB
    direct-mapped I-cache with 32-byte lines, 16-entry CLB, byte-aligned
    compressed blocks, a 2-byte-per-cycle hard-wired decoder, and no data
    cache (every data access a 4-cycle random DRAM read).

    Attributes:
        cache_bytes: Instruction-cache capacity (256-4096 in the paper).
        line_size: Cache-line size in bytes.
        memory: Instruction-memory model name (``"eprom"``,
            ``"burst_eprom"``, ``"sc_dram"``) or a
            :class:`~repro.memsys.models.MemoryModel`.
        clb_entries: CLB capacity in LAT entries.
        decoder: Refill-decoder timing model.
        data_cache: Analytic data-cache model (miss rate 1.0 = none).
        block_alignment: Compressed-block alignment (1 = byte, 4 = word).
    """

    cache_bytes: int = 1024
    line_size: int = 32
    memory: object = "eprom"
    clb_entries: int = 16
    decoder: DecoderModel = field(default_factory=DecoderModel)
    data_cache: DataCacheModel = field(default_factory=DataCacheModel)
    block_alignment: int = BYTE_ALIGNED

    def __post_init__(self) -> None:
        if self.cache_bytes < self.line_size:
            raise ConfigurationError(
                f"cache of {self.cache_bytes} B cannot hold a {self.line_size} B line"
            )
        if self.block_alignment not in (BYTE_ALIGNED, WORD_ALIGNED):
            raise ConfigurationError(
                f"block alignment must be 1 or 4, got {self.block_alignment}"
            )
        if self.clb_entries < 1:
            raise ConfigurationError("CLB needs at least one entry")

    def with_options(self, **changes) -> "SystemConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)
