"""Trace-driven comparison of the standard RISC and CCRP machines.

:class:`ProgramStudy` owns everything reusable about one workload — its
execution trace, compressed image, per-cache-size miss streams, and
per-CLB-size miss counts — so design-space sweeps (the paper's Tables 1-13
and Figure 9) pay for each expensive piece exactly once.
"""

from __future__ import annotations

import numpy as np

from repro.cache.direct_mapped import simulate_trace
from repro.cache.stats import CacheStats
from repro.ccrp.clb import CLB
from repro.ccrp.compressor import ProgramCompressor
from repro.ccrp.refill import RefillEngine
from repro.compression.huffman import HuffmanCode
from repro.core.config import SystemConfig
from repro.core.performance import ComparisonReport, SystemMetrics
from repro.core.standard import standard_code
from repro.lat.entry import ENTRY_BYTES, LINES_PER_ENTRY
from repro.memsys.models import get_memory_model
from repro.workloads.suite import Workload, load


class ProgramStudy:
    """Cached per-workload simulation state for design-space sweeps.

    Args:
        workload: A suite name or a :class:`~repro.workloads.suite.Workload`.
        code: Huffman code for the CCRP image; defaults to the library's
            standard preselected bounded code.
        block_alignment: Compressed-block alignment (1 = byte, 4 = word).
        max_instructions: Trace-length cap passed to the executor.
    """

    def __init__(
        self,
        workload: str | Workload,
        code: HuffmanCode | None = None,
        block_alignment: int = 1,
        max_instructions: int = 4_000_000,
    ) -> None:
        self.workload = load(workload) if isinstance(workload, str) else workload
        self.code = code if code is not None else standard_code()
        self.execution = self.workload.run(max_instructions=max_instructions)
        compressor = ProgramCompressor(self.code, alignment=block_alignment)
        self.image = compressor.compress(
            self.workload.text, text_base=self.workload.program.text_base
        )
        self._cache_stats: dict[int, CacheStats] = {}
        self._clb_misses: dict[tuple[int, int], int] = {}
        self._engines: dict[str, RefillEngine] = {}

    # ------------------------------------------------------------------
    # Cached building blocks
    # ------------------------------------------------------------------

    def cache_stats(self, cache_bytes: int) -> CacheStats:
        """Miss statistics for one cache size (cached)."""
        stats = self._cache_stats.get(cache_bytes)
        if stats is None:
            stats = simulate_trace(
                self.execution.trace.addresses, cache_bytes, self.image.line_size
            )
            self._cache_stats[cache_bytes] = stats
        return stats

    def clb_miss_count(self, cache_bytes: int, clb_entries: int) -> int:
        """CLB misses over the miss stream of one cache size (cached)."""
        key = (cache_bytes, clb_entries)
        count = self._clb_misses.get(key)
        if count is None:
            miss_lines = self.cache_stats(cache_bytes).miss_lines
            lat_indices = miss_lines // LINES_PER_ENTRY
            count = CLB(entries=clb_entries).simulate(lat_indices.tolist())
            self._clb_misses[key] = count
        return count

    def refill_engine(self, memory: object, decoder) -> RefillEngine:
        """Refill-cost tables for one memory model (cached per name)."""
        model = get_memory_model(memory)
        key = f"{model.name}/{decoder.bytes_per_cycle}/{decoder.detailed}"
        engine = self._engines.get(key)
        if engine is None:
            engine = RefillEngine(self.image, model, decoder)
            self._engines[key] = engine
        return engine

    # ------------------------------------------------------------------
    # The comparison itself
    # ------------------------------------------------------------------

    def metrics(self, config: SystemConfig) -> ComparisonReport:
        """Simulate both machines under ``config`` and compare."""
        stats = self.cache_stats(config.cache_bytes)
        engine = self.refill_engine(config.memory, config.decoder)
        model = get_memory_model(config.memory)
        execution = self.execution

        data_cycles = config.data_cache.penalty_cycles(execution.data_accesses)
        base_cycles = execution.base_cycles

        # --- standard RISC machine --------------------------------------
        baseline = SystemMetrics(
            base_cycles=base_cycles,
            refill_cycles=engine.baseline_miss_cycles(stats.misses),
            data_cycles=data_cycles,
            instruction_traffic_bytes=stats.misses * self.image.line_size,
            misses=stats.misses,
            accesses=stats.accesses,
        )

        # --- compressed code machine ------------------------------------
        miss_line_indices = self._line_indices(stats.miss_lines)
        clb_misses = self.clb_miss_count(config.cache_bytes, config.clb_entries)
        ccrp_refill = (
            engine.ccrp_miss_cycles(miss_line_indices)
            + clb_misses * engine.lat_fetch_cycles
        )
        ccrp_traffic = (
            engine.ccrp_fetched_bytes(miss_line_indices) + clb_misses * ENTRY_BYTES
        )
        ccrp = SystemMetrics(
            base_cycles=base_cycles,
            refill_cycles=ccrp_refill,
            data_cycles=data_cycles,
            instruction_traffic_bytes=ccrp_traffic,
            misses=stats.misses,
            accesses=stats.accesses,
            clb_misses=clb_misses,
        )

        return ComparisonReport(
            program=self.workload.name,
            cache_bytes=config.cache_bytes,
            memory=model.name,
            clb_entries=config.clb_entries,
            data_cache_miss_rate=config.data_cache.miss_rate,
            baseline=baseline,
            ccrp=ccrp,
            compression_ratio=self.image.total_ratio_with_lat,
        )

    def _line_indices(self, miss_lines: np.ndarray) -> np.ndarray:
        base_line = self.workload.program.text_base // self.image.line_size
        return miss_lines - base_line


_STUDIES: dict[tuple[str, int], ProgramStudy] = {}


def compare(workload: str, config: SystemConfig | None = None) -> ComparisonReport:
    """One-call comparison: workload name + config -> report.

    Studies are cached per (workload, block alignment), so sweeping
    configurations stays cheap.
    """
    config = config or SystemConfig()
    key = (workload, config.block_alignment)
    study = _STUDIES.get(key)
    if study is None:
        study = ProgramStudy(workload, block_alignment=config.block_alignment)
        _STUDIES[key] = study
    return study.metrics(config)
