"""Trace-driven comparison of the standard RISC and CCRP machines.

:class:`ProgramStudy` owns everything reusable about one workload — its
execution trace, compressed image, per-cache-size miss streams, and
per-CLB-size miss counts — so design-space sweeps (the paper's Tables 1-13
and Figure 9) pay for each expensive piece exactly once.
"""

from __future__ import annotations

import numpy as np

from repro.cache.direct_mapped import simulate_trace
from repro.cache.stats import CacheStats
from repro.ccrp.clb import CLB
from repro.ccrp.compressor import ProgramCompressor
from repro.ccrp.refill import RefillEngine
from repro.ccrp.stackdist import lru_miss_count, lru_miss_curve
from repro.compression.huffman import HuffmanCode
from repro.core import artifacts
from repro.core.config import SystemConfig
from repro.core.metrics import METRICS
from repro.core.performance import ComparisonReport, SystemMetrics
from repro.core.standard import standard_code
from repro.lat.entry import ENTRY_BYTES, LINES_PER_ENTRY
from repro.memsys.models import get_memory_model, memsys_reference_mode
from repro.pipeline.datapath import PipelineResult
from repro.pipeline.frontend import (
    baseline_critical_word_cycles,
    ccrp_critical_word_cycles,
    miss_mask,
)
from repro.pipeline.hazards import HazardModel, R2000_HAZARDS
from repro.pipeline.timeline import BlockTable, replay_trace
from repro.prefetch import FetchReplay, build_btb, simulate_fetch_stream
from repro.workloads.suite import Workload, load


class ProgramStudy:
    """Cached per-workload simulation state for design-space sweeps.

    Args:
        workload: A suite name or a :class:`~repro.workloads.suite.Workload`.
        code: Huffman code for the CCRP image; defaults to the library's
            standard preselected bounded code.
        block_alignment: Compressed-block alignment (1 = byte, 4 = word).
        max_instructions: Trace-length cap passed to the executor.
        hazards: Interlock parameters of the pipeline timing backend.
    """

    def __init__(
        self,
        workload: str | Workload,
        code: HuffmanCode | None = None,
        block_alignment: int = 1,
        max_instructions: int = 4_000_000,
        hazards: HazardModel = R2000_HAZARDS,
    ) -> None:
        self.workload = load(workload) if isinstance(workload, str) else workload
        self.code = code if code is not None else standard_code()
        self.block_alignment = block_alignment
        self.max_instructions = max_instructions
        self.hazards = hazards

        cache = artifacts.get_cache()
        text_fp = artifacts.fingerprint_bytes(self.workload.text)
        code_fp = artifacts.code_fingerprint(self.code)
        # Everything a trace artifact depends on; image/miss-stream keys
        # extend this with the code and cache geometry respectively.
        self._trace_key = (self.workload.name, text_fp, max_instructions)
        self._code_fp = code_fp

        with METRICS.stage("study.trace"):
            self.execution = cache.get_or_compute(
                "trace",
                lambda: self.workload.run(max_instructions=max_instructions),
                *self._trace_key,
            )

        def _compress():
            compressor = ProgramCompressor(self.code, alignment=block_alignment)
            return compressor.compress(
                self.workload.text, text_base=self.workload.program.text_base
            )

        with METRICS.stage("study.compress"):
            self.image = cache.get_or_compute(
                "image", _compress, self.workload.name, text_fp, code_fp, block_alignment
            )

        self._cache_stats: dict[int, CacheStats] = {}
        self._clb_misses: dict[tuple[int, int], int] = {}
        self._clb_curves: dict[int, np.ndarray] = {}
        self._engines: dict[str, RefillEngine] = {}
        self._pipeline_replay: PipelineResult | None = None
        self._miss_addresses: dict[int, np.ndarray] = {}
        self._prefetch_replays: dict[tuple, "FetchReplay"] = {}
        self._btb = None

    # ------------------------------------------------------------------
    # Cached building blocks
    # ------------------------------------------------------------------

    def cache_stats(self, cache_bytes: int) -> CacheStats:
        """Miss statistics for one cache size (memoised and disk-cached)."""
        stats = self._cache_stats.get(cache_bytes)
        if stats is None:
            with METRICS.stage("study.cache_sim"):
                stats = artifacts.get_cache().get_or_compute(
                    "miss-stream",
                    lambda: simulate_trace(
                        self.execution.trace.addresses, cache_bytes, self.image.line_size
                    ),
                    *self._trace_key,
                    cache_bytes,
                    self.image.line_size,
                )
            self._cache_stats[cache_bytes] = stats
        return stats

    def clb_miss_count(self, cache_bytes: int, clb_entries: int) -> int:
        """CLB misses over the miss stream of one cache size (cached).

        Served from the one-pass stack-distance miss curve, so sweeping
        CLB sizes costs one simulation per cache size.  With
        ``CCRP_MEMSYS_REFERENCE`` set, the stateful :class:`CLB` walks
        the stream instead — the golden reference the curve is pinned to.
        """
        if not memsys_reference_mode():
            return lru_miss_count(self._clb_curve(cache_bytes), clb_entries)
        key = (cache_bytes, clb_entries)
        count = self._clb_misses.get(key)
        if count is None:
            with METRICS.stage("study.clb_sim"):
                miss_lines = self.cache_stats(cache_bytes).miss_lines

                def _simulate() -> int:
                    lat_indices = miss_lines // LINES_PER_ENTRY
                    return CLB(entries=clb_entries).simulate(lat_indices)

                count = artifacts.get_cache().get_or_compute(
                    "clb-misses",
                    _simulate,
                    *self._trace_key,
                    cache_bytes,
                    self.image.line_size,
                    clb_entries,
                )
            self._clb_misses[key] = count
        return count

    def clb_miss_counts(self, cache_bytes: int) -> dict[int, int]:
        """Miss counts for *every* CLB capacity over one cache size.

        One stack-distance pass yields the whole curve: keys run from 1
        up to the largest finite stack distance in the stream; any larger
        CLB takes exactly the last entry's (cold-miss) count.
        """
        curve = self._clb_curve(cache_bytes)
        if curve.size == 1:  # empty miss stream
            return {1: int(curve[0])}
        return {entries: int(curve[entries]) for entries in range(1, curve.size)}

    def _clb_curve(self, cache_bytes: int) -> np.ndarray:
        curve = self._clb_curves.get(cache_bytes)
        if curve is None:
            with METRICS.stage("study.clb_sim"):
                miss_lines = self.cache_stats(cache_bytes).miss_lines

                def _curve() -> np.ndarray:
                    return lru_miss_curve(miss_lines // LINES_PER_ENTRY)

                curve = artifacts.get_cache().get_or_compute(
                    "clb-curve",
                    _curve,
                    *self._trace_key,
                    cache_bytes,
                    self.image.line_size,
                )
            self._clb_curves[cache_bytes] = curve
        return curve

    def refill_engine(self, memory: object, decoder) -> RefillEngine:
        """Refill-cost tables for one memory model (cached per name)."""
        model = get_memory_model(memory)
        key = f"{model.name}/{decoder.bytes_per_cycle}/{decoder.detailed}"
        engine = self._engines.get(key)
        if engine is None:
            engine = RefillEngine(self.image, model, decoder)
            self._engines[key] = engine
        return engine

    def pipeline_replay(self) -> PipelineResult:
        """Hazard/branch cycle totals of the 5-stage pipeline model.

        Memory-independent (the fetch terms are zero here — they depend
        on the cache/memory configuration and are added per config), so
        one vectorized replay serves the whole design-space sweep.  Disk
        cached alongside the trace artifacts.
        """
        replay = self._pipeline_replay
        if replay is None:
            with METRICS.stage("study.pipeline_replay"):

                def _replay() -> PipelineResult:
                    table = BlockTable(
                        self.workload.program.instructions,
                        text_base=self.workload.program.text_base,
                        hazards=self.hazards,
                    )
                    return replay_trace(
                        self.execution.trace,
                        self.workload.program.instructions,
                        block_table=table,
                    )

                replay = artifacts.get_cache().get_or_compute(
                    "pipeline-replay",
                    _replay,
                    *self._trace_key,
                    self.hazards.fingerprint(),
                    # Event segmentation changed (discontinuity-aware);
                    # invalidate artifacts from the leader-only version.
                    "timeline-v2",
                )
            self._pipeline_replay = replay
        return replay

    def btb(self):
        """The workload's static branch-target buffer (built once).

        Trained from the CFG's static transfer edges
        (:func:`repro.isa.cfg.static_transfer_targets`), so it is a
        property of the program text alone — every configuration and
        policy shares it.
        """
        if self._btb is None:
            self._btb = build_btb(
                self.workload.program.instructions,
                text_base=self.workload.program.text_base,
                line_size=self.image.line_size,
            )
        return self._btb

    def prefetch_replay(self, config: SystemConfig) -> FetchReplay:
        """Fetch-path replay of one prefetching configuration (cached).

        Runs the vectorized timeline
        (:func:`repro.prefetch.simulate_fetch_stream`) over the whole
        trace — byte-identical to the exact
        :class:`~repro.prefetch.engine.PrefetchingFetchUnit`, which the
        prefetch study and property tests pin.  Disk cached on the full
        machine identity (trace, code, alignment, cache geometry, memory,
        decoder, CLB size, policy, depth).
        """
        model = get_memory_model(config.memory)
        key = (
            config.cache_bytes,
            model.name,
            config.decoder.bytes_per_cycle,
            config.decoder.detailed,
            config.clb_entries,
            config.fetch_policy,
            config.prefetch_depth,
        )
        replay = self._prefetch_replays.get(key)
        if replay is None:
            with METRICS.stage("study.prefetch_replay"):
                engine = self.refill_engine(config.memory, config.decoder)

                def _replay() -> FetchReplay:
                    return simulate_fetch_stream(
                        self.execution.trace.addresses,
                        config.cache_bytes,
                        self.image.line_size,
                        model,
                        refill=engine,
                        clb=CLB(entries=config.clb_entries),
                        policy=config.fetch_policy,
                        prefetch_depth=config.prefetch_depth,
                        btb=self.btb() if config.fetch_policy == "btb" else None,
                    )

                replay = artifacts.get_cache().get_or_compute(
                    "prefetch-replay",
                    _replay,
                    *self._trace_key,
                    self._code_fp,
                    self.block_alignment,
                    *key,
                )
            self._prefetch_replays[key] = replay
        return replay

    def miss_addresses(self, cache_bytes: int) -> np.ndarray:
        """Byte address of every missing fetch, in occurrence order.

        The per-miss *offsets within the line* drive the
        critical-word-first refill extension; the plain miss-line stream
        of :meth:`cache_stats` cannot provide them.
        """
        addresses = self._miss_addresses.get(cache_bytes)
        if addresses is None:
            with METRICS.stage("study.miss_addresses"):
                trace = self.execution.trace.addresses

                def _compute() -> np.ndarray:
                    mask = miss_mask(trace, cache_bytes, self.image.line_size)
                    return trace[mask]

                addresses = artifacts.get_cache().get_or_compute(
                    "miss-addresses",
                    _compute,
                    *self._trace_key,
                    cache_bytes,
                    self.image.line_size,
                )
            self._miss_addresses[cache_bytes] = addresses
        return addresses

    # ------------------------------------------------------------------
    # The comparison itself
    # ------------------------------------------------------------------

    def metrics(self, config: SystemConfig) -> ComparisonReport:
        """Simulate both machines under ``config`` and compare."""
        stats = self.cache_stats(config.cache_bytes)
        engine = self.refill_engine(config.memory, config.decoder)
        model = get_memory_model(config.memory)
        execution = self.execution

        data_cycles = config.data_cache.penalty_cycles(execution.data_accesses)
        miss_line_indices = self._line_indices(stats.miss_lines)
        clb_misses = self.clb_miss_count(config.cache_bytes, config.clb_entries)

        # --- timing backend ----------------------------------------------
        if config.timing == "pipeline":
            replay = self.pipeline_replay()
            base_cycles = (
                replay.issue_cycles
                + replay.fill_cycles
                + replay.hazard_stall_cycles
                + replay.branch_stall_cycles
            )
            timing_fields = {
                "timing": "pipeline",
                "hazard_stall_cycles": replay.hazard_stall_cycles,
                "branch_stall_cycles": replay.branch_stall_cycles,
                "fill_cycles": replay.fill_cycles,
            }
            METRICS.count("pipeline.hazard_stall_cycles", replay.hazard_stall_cycles)
            METRICS.count("pipeline.branch_stall_cycles", replay.branch_stall_cycles)
        else:
            base_cycles = execution.base_cycles
            timing_fields = {
                "timing": "additive",
                "hazard_stall_cycles": execution.stall_cycles,
            }

        # --- refill freezes ----------------------------------------------
        prefetch_fields: dict[str, int | str] = {}
        if config.critical_word_first:
            misses = self.miss_addresses(config.cache_bytes)
            baseline_refill = baseline_critical_word_cycles(model, stats.misses)
            ccrp_refill = (
                ccrp_critical_word_cycles(engine, misses)
                + clb_misses * engine.lat_fetch_cycles
            )
        else:
            baseline_refill = engine.baseline_miss_cycles(stats.misses)
            ccrp_refill = (
                engine.ccrp_miss_cycles(miss_line_indices)
                + clb_misses * engine.lat_fetch_cycles
            )
        if config.fetch_policy != "demand":
            # The prefetcher only exists on the CCRP side — it hides
            # *decompression* latency; the standard machine's burst refill
            # has nothing comparable to overlap, so the baseline stays
            # demand-fetched and the comparison shows the recovered gap.
            fetch = self.prefetch_replay(config)
            ccrp_refill = fetch.fetch_stall_cycles
            clb_misses = fetch.clb_misses
            prefetch_fields = {
                "fetch_policy": config.fetch_policy,
                "prefetch_issued": fetch.issued,
                "prefetch_useful": fetch.useful,
                "prefetch_useless": fetch.useless,
                "prefetch_partial": fetch.partial,
                "covered_stall_cycles": fetch.covered_stall_cycles,
                "wasted_traffic_bytes": fetch.wasted_traffic_bytes,
            }
            METRICS.count("prefetch.issued", fetch.issued)
            METRICS.count("prefetch.useful", fetch.useful)
            METRICS.count("prefetch.useless", fetch.useless)
            METRICS.count("prefetch.partial", fetch.partial)
            METRICS.count("prefetch.covered_stall_cycles", fetch.covered_stall_cycles)
            METRICS.count("frontend.clb_hits", fetch.clb_hits)
            METRICS.count("frontend.clb_misses", fetch.clb_misses)
        else:
            METRICS.count("frontend.clb_hits", stats.misses - clb_misses)
            METRICS.count("frontend.clb_misses", clb_misses)

        # --- standard RISC machine --------------------------------------
        baseline = SystemMetrics(
            base_cycles=base_cycles,
            refill_cycles=baseline_refill,
            data_cycles=data_cycles,
            instruction_traffic_bytes=stats.misses * self.image.line_size,
            misses=stats.misses,
            accesses=stats.accesses,
            **timing_fields,
        )

        # --- compressed code machine ------------------------------------
        if config.fetch_policy != "demand":
            # The replay's traffic already folds in the LAT-entry reads
            # (demand and speculative) and wrong-path prefetch bytes.
            ccrp_traffic = self.prefetch_replay(config).traffic_bytes
        else:
            ccrp_traffic = (
                engine.ccrp_fetched_bytes(miss_line_indices) + clb_misses * ENTRY_BYTES
            )
        ccrp = SystemMetrics(
            base_cycles=base_cycles,
            refill_cycles=ccrp_refill,
            data_cycles=data_cycles,
            instruction_traffic_bytes=ccrp_traffic,
            misses=stats.misses,
            accesses=stats.accesses,
            clb_misses=clb_misses,
            **timing_fields,
            **prefetch_fields,
        )

        # An integrity policy stores one CRC byte per line with the image;
        # charge it to the reported ratio the same way the LAT is charged.
        compression_ratio = (
            self.image.total_ratio_with_lat
            if config.integrity == "off"
            else self.image.total_ratio_with_integrity
        )

        return ComparisonReport(
            program=self.workload.name,
            cache_bytes=config.cache_bytes,
            memory=model.name,
            clb_entries=config.clb_entries,
            data_cache_miss_rate=config.data_cache.miss_rate,
            baseline=baseline,
            ccrp=ccrp,
            compression_ratio=compression_ratio,
        )

    def _line_indices(self, miss_lines: np.ndarray) -> np.ndarray:
        base_line = self.workload.program.text_base // self.image.line_size
        return miss_lines - base_line


def compare(workload: str, config: SystemConfig | None = None) -> ComparisonReport:
    """One-call comparison: workload name + config -> report.

    Studies come from :func:`repro.core.artifacts.get_study`, a bounded
    LRU keyed on the *complete* study identity (workload, text and code
    fingerprints, block alignment, instruction cap), so sweeping
    configurations stays cheap and changing the code or the instruction
    cap can never return a stale study.  Tests reset it with
    :func:`repro.core.artifacts.clear`.
    """
    config = config or SystemConfig()
    study = artifacts.get_study(workload, block_alignment=config.block_alignment)
    return study.metrics(config)
