"""Performance results: per-machine metrics and the paper's comparison.

The paper reports, per experiment (Tables 1-13):

* *Relative Performance* — which its prose pins down as relative execution
  time, T_CCRP / T_standard (values below 1.0 mean the compressed-code
  machine is *faster*; "the execution time increases by less than ten
  percent" next to Burst-EPROM entries like 1.098);
* *Cache Miss Rate* — identical for both machines by construction;
* *Memory Traffic* — CCRP instruction-memory bytes (including LAT-entry
  reads) as a fraction of the standard machine's.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SystemMetrics:
    """Cycle and traffic totals for one machine on one trace.

    Attributes:
        base_cycles: Memory-independent cycles.  Under the additive
            timing backend this is issue cycles plus the pixie-style
            stall estimate; under the pipeline backend it is issue +
            pipeline fill + hazard interlocks + branch redirects.
        refill_cycles: Instruction-cache refill cycles, including any
            CLB/LAT penalty on the CCRP.
        data_cycles: Data-access penalty cycles.
        instruction_traffic_bytes: Bytes fetched from instruction memory.
        misses: Instruction-cache miss count.
        accesses: Instruction fetch count.
        clb_misses: CLB misses (0 for the standard machine).
        timing: Which backend produced the numbers (``"additive"`` or
            ``"pipeline"``).
        hazard_stall_cycles: Data/structural interlock cycles (the
            additive backend reports its flat latency estimate here).
        branch_stall_cycles: Taken-redirect squashed-fetch cycles
            (pipeline backend only; the additive model cannot see them).
        fill_cycles: Pipeline fill/drain cycles (pipeline backend only).
        fetch_policy: Front-end refill policy that produced the numbers
            (``"demand"`` unless a prefetcher ran; see
            :mod:`repro.prefetch`).
        prefetch_issued / prefetch_useful / prefetch_useless /
        prefetch_partial: Prefetch outcome counters (all zero under the
            demand policy).
        covered_stall_cycles: Demand refill cycles the prefetcher hid —
            freeze cycles the machine *would* have paid under the demand
            policy but did not.
        wasted_traffic_bytes: Instruction-memory bytes fetched by
            prefetches that never covered a miss (already included in
            ``instruction_traffic_bytes``).
    """

    base_cycles: int
    refill_cycles: int
    data_cycles: int
    instruction_traffic_bytes: int
    misses: int
    accesses: int
    clb_misses: int = 0
    timing: str = "additive"
    hazard_stall_cycles: int = 0
    branch_stall_cycles: int = 0
    fill_cycles: int = 0
    fetch_policy: str = "demand"
    prefetch_issued: int = 0
    prefetch_useful: int = 0
    prefetch_useless: int = 0
    prefetch_partial: int = 0
    covered_stall_cycles: int = 0
    wasted_traffic_bytes: int = 0

    @property
    def total_cycles(self) -> int:
        """Execution time in processor cycles."""
        return self.base_cycles + self.refill_cycles + self.data_cycles

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def cpi(self) -> float:
        """Cycles per instruction (accesses = dynamic instructions)."""
        return self.total_cycles / self.accesses if self.accesses else 0.0

    @property
    def stall_breakdown(self) -> dict[str, int]:
        """Stall cycles by cause: hazard vs branch vs fetch vs data.

        ``covered`` is the fetch-stall share the prefetcher hid — it is
        *not* part of :attr:`total_stall_cycles` (those cycles were never
        paid) but is reported beside the paid causes so the breakdown
        still accounts for the demand machine's fetch bill:
        ``fetch + covered`` equals the demand-policy fetch cost modulo
        CLB interference (speculative LAT reads warm or pollute the CLB,
        shifting the demand-path LAT penalties; with a perfect CLB the
        identity is exact — see ``docs/modeling_notes.md`` §15).
        """
        return {
            "hazard": self.hazard_stall_cycles,
            "branch": self.branch_stall_cycles,
            "fetch": self.refill_cycles,
            "data": self.data_cycles,
            "covered": self.covered_stall_cycles,
        }

    def prefetch_counters(self) -> dict[str, int]:
        """The prefetch counter block (all zeros under demand)."""
        return {
            "issued": self.prefetch_issued,
            "useful": self.prefetch_useful,
            "useless": self.prefetch_useless,
            "partial": self.prefetch_partial,
            "covered_stall_cycles": self.covered_stall_cycles,
            "wasted_traffic_bytes": self.wasted_traffic_bytes,
        }

    @property
    def total_stall_cycles(self) -> int:
        """Every cycle that is not an issue or fill cycle."""
        return (
            self.hazard_stall_cycles
            + self.branch_stall_cycles
            + self.refill_cycles
            + self.data_cycles
        )


@dataclass(frozen=True)
class ComparisonReport:
    """Standard RISC vs CCRP on one workload and configuration.

    Attributes:
        program: Workload name.
        cache_bytes: Instruction-cache size simulated.
        memory: Memory-model name.
        clb_entries: CLB capacity used by the CCRP machine.
        data_cache_miss_rate: Data-cache miss rate applied to both.
        baseline: Metrics of the standard RISC system.
        ccrp: Metrics of the compressed-code system.
        compression_ratio: Stored-size ratio of the compressed image
            (blocks + LAT over original bytes).
    """

    program: str
    cache_bytes: int
    memory: str
    clb_entries: int
    data_cache_miss_rate: float
    baseline: SystemMetrics
    ccrp: SystemMetrics
    compression_ratio: float

    @property
    def relative_execution_time(self) -> float:
        """T_CCRP / T_standard — the paper's "Relative Performance"."""
        return self.ccrp.total_cycles / self.baseline.total_cycles

    @property
    def miss_rate(self) -> float:
        """Instruction-cache miss rate (same for both machines)."""
        return self.baseline.miss_rate

    @property
    def memory_traffic_ratio(self) -> float:
        """CCRP instruction-memory traffic over the standard machine's."""
        if self.baseline.instruction_traffic_bytes == 0:
            return 1.0
        return (
            self.ccrp.instruction_traffic_bytes
            / self.baseline.instruction_traffic_bytes
        )

    @property
    def speedup(self) -> float:
        """Standard-time over CCRP-time (> 1 means the CCRP wins)."""
        return 1.0 / self.relative_execution_time
