"""Content-addressed on-disk cache for expensive simulation artifacts.

A :class:`ProgramStudy` is built from three costly pieces — the execution
trace, the compressed image, and per-cache-size miss streams.  All of
them are pure functions of a small key (workload name, text-segment
fingerprint, Huffman-code fingerprint, block alignment, instruction cap,
cache geometry), so they are computed once and memoised on disk, keyed by
the SHA-256 of that key.  A second process — or a ``--jobs N`` worker —
finds them already materialised.

Layout: ``<cache root>/<format version>/<kind>/<digest>.pkl``, written
atomically (temp file + ``os.replace``).  Builds are **single-flight**
across processes: a miss takes an exclusive ``flock`` on the artifact's
``.lock`` sibling before computing, and re-checks the disk once the lock
arrives — so N cold workers asking for the same key produce one build
and N-1 cheap loads (``artifacts.coalesced``), not N duplicate
simulations.  Where ``fcntl`` is unavailable the old race remains and is
still safe: last writer wins with identical bytes-for-key content.

Escape hatches:

* ``CCRP_CACHE_DIR`` — relocate the cache root (default
  ``~/.cache/ccrp-repro``);
* ``CCRP_NO_CACHE=1`` or :func:`set_cache_enabled` (the CLI's
  ``--no-cache``) — bypass the disk entirely.

This module also owns the bounded in-memory **study cache** behind
:func:`repro.core.study.compare`, replacing the old module-level dict
that keyed only on ``(workload, block_alignment)`` — ignoring the
Huffman code and instruction cap — and grew without bound.  The new key
is complete, the cache is LRU-bounded, and :func:`clear` resets it for
tests.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import zlib
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable

try:  # POSIX only; on other platforms builders race (atomic store, last wins)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.core.metrics import METRICS

#: Environment variable relocating the on-disk cache root.
ENV_CACHE_DIR = "CCRP_CACHE_DIR"

#: Environment variable disabling the on-disk cache ("1", "true", "yes").
ENV_NO_CACHE = "CCRP_NO_CACHE"

#: Bump to invalidate every artifact when the pickled formats change.
#: 2: ExecutionTrace grew a lazy block-trace backing (superop engine).
#: 3: CompressedImage grew the line_crcs integrity field.
FORMAT_VERSION = 3

#: Studies kept by the in-memory LRU used by :func:`get_study`.
MAX_CACHED_STUDIES = 16

_TRUTHY = {"1", "true", "yes", "on"}

#: Process-wide override; ``None`` defers to ``CCRP_NO_CACHE``.
_enabled_override: bool | None = None


def set_cache_enabled(enabled: bool | None) -> None:
    """Force the disk cache on/off; ``None`` restores env-var control."""
    global _enabled_override
    _enabled_override = enabled


def cache_enabled() -> bool:
    """Whether artifact loads/stores touch the disk right now."""
    if _enabled_override is not None:
        return _enabled_override
    return os.environ.get(ENV_NO_CACHE, "").strip().lower() not in _TRUTHY


@contextmanager
def cache_disabled():
    """Bypass the disk cache inside the block, restoring the prior state."""
    global _enabled_override
    previous = _enabled_override
    _enabled_override = False
    try:
        yield
    finally:
        _enabled_override = previous


def cache_root() -> Path:
    """Resolved cache root (honours ``CCRP_CACHE_DIR`` at call time)."""
    env = os.environ.get(ENV_CACHE_DIR, "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "ccrp-repro"


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------


def fingerprint_bytes(data: bytes) -> str:
    """Short stable content fingerprint (first 16 hex chars of SHA-256)."""
    return hashlib.sha256(data).hexdigest()[:16]


def code_fingerprint(code) -> str:
    """Fingerprint of a canonical Huffman code.

    Canonical codes are fully determined by their 256 code lengths, so
    hashing the length vector identifies the code.
    """
    return fingerprint_bytes(bytes(code.lengths))


def _digest(kind: str, key_parts: tuple) -> str:
    material = "\x1f".join([kind, str(FORMAT_VERSION), *map(str, key_parts)])
    return hashlib.sha256(material.encode()).hexdigest()


# ----------------------------------------------------------------------
# The on-disk cache
# ----------------------------------------------------------------------


class ArtifactCache:
    """Content-addressed pickle store under one root directory.

    Args:
        root: Cache root; ``None`` resolves :func:`cache_root` per call,
            so tests can repoint ``CCRP_CACHE_DIR`` between operations.
    """

    def __init__(self, root: Path | None = None) -> None:
        self._root = Path(root) if root is not None else None

    @property
    def root(self) -> Path:
        return self._root if self._root is not None else cache_root()

    def path_for(self, kind: str, *key_parts) -> Path:
        """Where the artifact for this key lives (existing or not)."""
        return self.root / str(FORMAT_VERSION) / kind / f"{_digest(kind, key_parts)}.pkl"

    def load(self, kind: str, *key_parts) -> tuple[bool, Any]:
        """``(found, value)`` for the key; corrupt entries are evicted."""
        if not cache_enabled():
            return False, None
        path = self.path_for(kind, *key_parts)
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            return False, None
        except Exception:
            # A truncated or stale pickle: drop it and recompute.  Counted
            # separately from plain misses so on-disk corruption is visible
            # in --metrics dumps instead of silently masquerading as a miss.
            METRICS.count("artifacts.evict")
            path.unlink(missing_ok=True)
            return False, None
        return True, value

    def store(self, kind: str, value: Any, *key_parts) -> Path | None:
        """Atomically persist ``value``; returns the path (or ``None``)."""
        if not cache_enabled():
            return None
        path = self.path_for(kind, *key_parts)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        METRICS.count("artifacts.store")
        return path

    @contextmanager
    def _build_lock(self, path: Path):
        """Cross-process single-flight guard for one artifact key.

        Holds an exclusive ``flock`` on a sibling ``.lock`` file while the
        artifact is computed, so N concurrent builders of the same key
        wait on one winner instead of all re-simulating.  Lock files are
        tiny and persistent; they are never read, only locked.  Without
        ``fcntl`` (non-POSIX) this degrades to the old behaviour:
        duplicate builds that race on an atomic, last-writer-wins store.
        """
        if fcntl is None:
            yield
            return
        lock_path = path.with_suffix(".lock")
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        with lock_path.open("ab") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def get_or_compute(self, kind: str, compute: Callable[[], Any], *key_parts) -> Any:
        """Load the artifact, or compute (exactly once per machine) and persist.

        Counts ``artifacts.hit`` / ``artifacts.miss`` / ``artifacts.build``
        so cache behaviour shows up in ``--metrics`` dumps.  A miss takes
        the per-key file lock before computing and re-checks the disk
        under it: a process that lost the build race loads the winner's
        artifact instead of duplicating the work, counted as
        ``artifacts.coalesced``.  With the cache disabled this is just
        ``compute()`` (and counts nothing).
        """
        if not cache_enabled():
            return compute()
        found, value = self.load(kind, *key_parts)
        if found:
            METRICS.count("artifacts.hit")
            return value
        METRICS.count("artifacts.miss")
        with self._build_lock(self.path_for(kind, *key_parts)):
            # Another process may have won the build while we waited.
            found, value = self.load(kind, *key_parts)
            if found:
                METRICS.count("artifacts.coalesced")
                return value
            METRICS.count("artifacts.build")
            value = compute()
            self.store(kind, value, *key_parts)
        return value


#: The cache every :class:`ProgramStudy` goes through.
_CACHE = ArtifactCache()


def get_cache() -> ArtifactCache:
    """The process-wide artifact cache."""
    return _CACHE


# ----------------------------------------------------------------------
# The durable service response cache
# ----------------------------------------------------------------------

#: Artifact kind holding completed service responses.
SERVICE_RESPONSE_KIND = "service-response"


class ResponseCache:
    """Durable store for completed service responses.

    The compression service keys entries identically to its in-flight
    coalescing key — ``(op, canonical-JSON params, SHA-256(payload))``
    — so a restarted server answers a repeat request byte-identically
    from disk instead of recomputing it.  Each entry carries a CRC-32
    digest of its binary payload, recomputed on every load: an entry
    whose stored bytes no longer match the digest (torn write, disk
    corruption) is evicted and treated as a miss, never served.

    Entries live in the shared :class:`ArtifactCache` (so
    ``CCRP_CACHE_DIR`` / ``CCRP_NO_CACHE`` govern them like every other
    artifact) under the :data:`SERVICE_RESPONSE_KIND` kind.
    """

    def __init__(self, cache: ArtifactCache | None = None) -> None:
        self._cache = cache if cache is not None else get_cache()

    def get(self, key_parts: tuple) -> tuple[dict, bytes, int] | None:
        """``(result, payload, crc32)`` for the key, or ``None``.

        Verifies the stored payload against its recorded CRC-32 before
        returning; a mismatch evicts the entry (``artifacts.evict``)
        and reports a miss so the job is recomputed rather than served
        corrupt.
        """
        found, entry = self._cache.load(SERVICE_RESPONSE_KIND, *key_parts)
        if not found:
            return None
        try:
            result = entry["result"]
            payload = entry["payload"]
            crc = entry["crc32"]
        except (TypeError, KeyError):
            METRICS.count("artifacts.evict")
            self._evict(key_parts)
            return None
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            METRICS.count("artifacts.evict")
            self._evict(key_parts)
            return None
        return result, payload, crc

    def put(self, key_parts: tuple, result: dict, payload: bytes) -> int:
        """Persist one completed response; returns its CRC-32 digest."""
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        self._cache.store(
            SERVICE_RESPONSE_KIND,
            {"result": result, "payload": bytes(payload), "crc32": crc},
            *key_parts,
        )
        return crc

    def _evict(self, key_parts: tuple) -> None:
        self._cache.path_for(SERVICE_RESPONSE_KIND, *key_parts).unlink(
            missing_ok=True
        )


# ----------------------------------------------------------------------
# The in-memory study cache (compare()'s backing store)
# ----------------------------------------------------------------------

_STUDIES: OrderedDict[tuple, object] = OrderedDict()


def study_key(
    workload_name: str,
    text_fingerprint: str,
    code,
    block_alignment: int,
    max_instructions: int,
) -> tuple:
    """The complete identity of one :class:`ProgramStudy`."""
    return (
        workload_name,
        text_fingerprint,
        code_fingerprint(code),
        block_alignment,
        max_instructions,
    )


def get_study(
    workload,
    code=None,
    block_alignment: int = 1,
    max_instructions: int = 4_000_000,
):
    """A (possibly shared) :class:`ProgramStudy` for these parameters.

    Suite workloads named by string share a bounded process-wide LRU;
    ad-hoc :class:`~repro.workloads.suite.Workload` instances always get
    a fresh study (their artifacts still hit the disk cache).
    """
    from repro.core.standard import standard_code
    from repro.core.study import ProgramStudy
    from repro.workloads.suite import load

    if not isinstance(workload, str):
        return ProgramStudy(
            workload,
            code=code,
            block_alignment=block_alignment,
            max_instructions=max_instructions,
        )
    resolved_code = code if code is not None else standard_code()
    key = study_key(
        workload,
        fingerprint_bytes(load(workload).text),
        resolved_code,
        block_alignment,
        max_instructions,
    )
    study = _STUDIES.get(key)
    if study is not None:
        _STUDIES.move_to_end(key)
        METRICS.count("studies.hit")
        return study
    METRICS.count("studies.miss")
    study = ProgramStudy(
        workload,
        code=resolved_code,
        block_alignment=block_alignment,
        max_instructions=max_instructions,
    )
    _STUDIES[key] = study
    while len(_STUDIES) > MAX_CACHED_STUDIES:
        _STUDIES.popitem(last=False)
    return study


def clear() -> None:
    """Empty the in-memory study cache (tests call this between cases)."""
    _STUDIES.clear()
