"""Structured design-space sweeps.

The paper's evaluation is a grid: programs x cache sizes x memory models
x CLB sizes x data-cache miss rates.  :func:`sweep` runs any sub-grid of
that space through one cached :class:`~repro.core.study.ProgramStudy` and
returns the reports in a form that is easy to filter, rank, and export —
the API equivalent of "this could be determined at development time".
"""

from __future__ import annotations

import csv
import os
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.cache.datacache import DataCacheModel
from repro.ccrp.decoder import DecoderModel
from repro.core import artifacts
from repro.core.config import SystemConfig
from repro.core.performance import ComparisonReport
from repro.core.study import ProgramStudy
from repro.workloads.suite import Workload

#: Columns written by :meth:`SweepResult.to_csv`, in order.
CSV_COLUMNS = (
    "program",
    "memory",
    "cache_bytes",
    "clb_entries",
    "data_cache_miss_rate",
    "miss_rate",
    "relative_execution_time",
    "memory_traffic_ratio",
    "compression_ratio",
)


@dataclass(frozen=True)
class SweepResult:
    """All comparison reports from one sweep."""

    reports: tuple[ComparisonReport, ...]

    def __len__(self) -> int:
        return len(self.reports)

    def filter(self, **criteria) -> "SweepResult":
        """Keep reports whose attributes equal the given values, e.g.
        ``result.filter(memory="eprom", cache_bytes=1024)``."""
        kept = [
            report
            for report in self.reports
            if all(getattr(report, key) == value for key, value in criteria.items())
        ]
        return SweepResult(reports=tuple(kept))

    def best(self) -> ComparisonReport:
        """The configuration with the lowest relative execution time."""
        if not self.reports:
            raise ValueError("empty sweep")
        return min(self.reports, key=lambda report: report.relative_execution_time)

    def worst(self) -> ComparisonReport:
        """The configuration where the CCRP costs the most time."""
        if not self.reports:
            raise ValueError("empty sweep")
        return max(self.reports, key=lambda report: report.relative_execution_time)

    def rows(self) -> list[dict[str, object]]:
        """One flat dict per report, keyed by :data:`CSV_COLUMNS`."""
        return [
            {
                "program": report.program,
                "memory": report.memory,
                "cache_bytes": report.cache_bytes,
                "clb_entries": report.clb_entries,
                "data_cache_miss_rate": report.data_cache_miss_rate,
                "miss_rate": report.miss_rate,
                "relative_execution_time": report.relative_execution_time,
                "memory_traffic_ratio": report.memory_traffic_ratio,
                "compression_ratio": report.compression_ratio,
            }
            for report in self.reports
        ]

    def to_csv(self, path: str | Path) -> Path:
        """Write the sweep as CSV; returns the path written."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=CSV_COLUMNS)
            writer.writeheader()
            writer.writerows(self.rows())
        return path


def _grid(
    cache_sizes: Sequence[int],
    memories: Sequence[str],
    clb_entries: Sequence[int],
    data_miss_rates: Sequence[float],
    decoder: DecoderModel,
) -> list[SystemConfig]:
    """The cross product, in the fixed memory/cache/CLB/miss-rate order."""
    return [
        SystemConfig(
            cache_bytes=cache_bytes,
            memory=memory,
            clb_entries=entries,
            decoder=decoder,
            data_cache=DataCacheModel(miss_rate=miss_rate),
        )
        for memory in memories
        for cache_bytes in cache_sizes
        for entries in clb_entries
        for miss_rate in data_miss_rates
    ]


def _metrics_chunk(
    workload: str, configs: Sequence[SystemConfig]
) -> list[ComparisonReport]:
    """Worker entry point: study via the shared caches, then the chunk.

    With a warm artifact cache the study pieces load from disk, so the
    per-worker setup cost is deserialisation, not re-simulation.
    """
    study = artifacts.get_study(workload)
    return [study.metrics(config) for config in configs]


def sweep(
    workload: str | Workload,
    cache_sizes: Sequence[int] = (256, 512, 1024, 2048, 4096),
    memories: Sequence[str] = ("eprom", "burst_eprom", "sc_dram"),
    clb_entries: Sequence[int] = (16,),
    data_miss_rates: Sequence[float] = (1.0,),
    decoder: DecoderModel | None = None,
    study: ProgramStudy | None = None,
    jobs: int | None = None,
) -> SweepResult:
    """Run the full cross product of the given parameter axes.

    Args:
        workload: Suite name or :class:`Workload` instance.
        cache_sizes: Instruction-cache sizes to simulate.
        memories: Memory-model names.
        clb_entries: CLB capacities.
        data_miss_rates: Data-cache miss rates for the analytic model.
        decoder: Decoder model override (defaults to the paper's).
        study: Reuse an existing study (e.g. with a custom code).
        jobs: Fan grid points across this many worker processes.  Only
            suite workloads named by string parallelise (an explicit
            ``study`` cannot cross a process boundary); report order is
            identical to the serial run.
    """
    decoder = decoder or DecoderModel()
    configs = _grid(cache_sizes, memories, clb_entries, data_miss_rates, decoder)
    workers = (
        effective_jobs(jobs, len(configs))
        if study is None and isinstance(workload, str)
        else 1
    )
    if workers > 1:
        chunks = [configs[index::workers] for index in range(workers)]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_metrics_chunk, workload, chunk) for chunk in chunks]
            by_chunk = [future.result() for future in futures]
        # Undo the round-robin striping so order matches the serial run.
        reports = [None] * len(configs)
        for stripe, chunk_reports in enumerate(by_chunk):
            for offset, report in enumerate(chunk_reports):
                reports[stripe + offset * workers] = report
    else:
        if study is None:
            study = (
                artifacts.get_study(workload)
                if isinstance(workload, str)
                else ProgramStudy(workload)
            )
        reports = [study.metrics(config) for config in configs]
    return SweepResult(reports=tuple(reports))


def effective_jobs(jobs: int | None, tasks: int) -> int:
    """Worker processes actually worth spawning for ``tasks`` tasks.

    Clamps the requested count to the task count and to the machine's
    CPU count — extra workers past either bound only add process
    start-up and scheduling cost.  ``None`` and any result of 1 mean
    "run serial, no pool".
    """
    if jobs is None or tasks <= 0:
        return 1
    return max(1, min(jobs, tasks, os.cpu_count() or 1))


def _sweep_one(workload: str, axes: dict) -> tuple[ComparisonReport, ...]:
    """Worker entry point for :func:`sweep_many`."""
    return sweep(workload, **axes).reports


def sweep_many(
    workloads: Iterable[str],
    jobs: int | None = None,
    **axes,
) -> SweepResult:
    """Sweep several workloads and concatenate the results.

    With ``jobs`` set, whole workloads fan across a process pool (each
    worker warms up from the shared on-disk artifact cache); results are
    concatenated in the given workload order, exactly as a serial run.
    """
    workloads = list(workloads)
    reports: list[ComparisonReport] = []
    workers = effective_jobs(jobs, len(workloads))
    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_sweep_one, workload, axes) for workload in workloads]
            for future in futures:
                reports.extend(future.result())
    else:
        for workload in workloads:
            reports.extend(sweep(workload, **axes).reports)
    return SweepResult(reports=tuple(reports))
