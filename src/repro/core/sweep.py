"""Structured design-space sweeps.

The paper's evaluation is a grid: programs x cache sizes x memory models
x CLB sizes x data-cache miss rates.  :func:`sweep` runs any sub-grid of
that space through one cached :class:`~repro.core.study.ProgramStudy` and
returns the reports in a form that is easy to filter, rank, and export —
the API equivalent of "this could be determined at development time".

Sweeps degrade gracefully: each grid point is attempted independently
with a bounded retry, a failing point becomes a structured
:class:`FailureReport` on the returned :class:`SweepResult` (annotated
with the workload and grid coordinates), and every other point's report
survives.  Pass ``strict=True`` to restore fail-fast: the first
unrecoverable task re-raises, annotated with the failing workload.
"""

from __future__ import annotations

import csv
import os
import traceback
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.cache.datacache import DataCacheModel
from repro.ccrp.decoder import DecoderModel
from repro.core import artifacts
from repro.core.config import SystemConfig
from repro.core.metrics import METRICS
from repro.core.performance import ComparisonReport
from repro.core.study import ProgramStudy
from repro.errors import ReproError
from repro.workloads.suite import Workload

#: Columns written by :meth:`SweepResult.to_csv`, in order.
CSV_COLUMNS = (
    "program",
    "memory",
    "cache_bytes",
    "clb_entries",
    "data_cache_miss_rate",
    "miss_rate",
    "relative_execution_time",
    "memory_traffic_ratio",
    "compression_ratio",
)

#: Default bounded retry per failing grid point / workload.
DEFAULT_RETRIES = 1


@dataclass(frozen=True)
class FailureReport:
    """One task the sweep could not complete, with full attribution.

    Attributes:
        workload: Name of the workload whose task failed.
        detail: Which grid point (or stage) failed, human-readable.
        error_type: Exception class name.
        message: Exception message.
        attempts: Total attempts made (1 + retries).
        traceback: Formatted traceback of the last attempt, when one was
            captured (worker-side tracebacks travel back as strings).
    """

    workload: str
    detail: str
    error_type: str
    message: str
    attempts: int
    traceback: str = ""

    def render(self) -> str:
        """One-line summary for CLI output and logs."""
        return (
            f"{self.workload} [{self.detail}]: {self.error_type}: "
            f"{self.message} (after {self.attempts} attempt"
            f"{'s' if self.attempts != 1 else ''})"
        )


def _config_detail(config: SystemConfig) -> str:
    """Compact grid coordinates for failure attribution."""
    memory = getattr(config.memory, "name", config.memory)
    return (
        f"{memory}/{config.cache_bytes}B/clb{config.clb_entries}"
        f"/dmiss{config.data_cache.miss_rate:g}"
    )


def _annotate(error: BaseException, context: str) -> BaseException:
    """A copy of ``error`` whose message leads with ``context``.

    Keeps the original exception class when it can be rebuilt from a
    single message (every :class:`~repro.errors.ReproError` can), so
    ``except LATError`` style handling still works in strict mode; falls
    back to :class:`~repro.errors.ReproError` otherwise.
    """
    try:
        clone = type(error)(f"{context}: {error}")
    except Exception:
        clone = ReproError(f"{context}: {error}")
    return clone


@dataclass(frozen=True)
class SweepResult:
    """All comparison reports from one sweep, plus any captured failures."""

    reports: tuple[ComparisonReport, ...]
    failures: tuple[FailureReport, ...] = ()

    def __len__(self) -> int:
        return len(self.reports)

    @property
    def ok(self) -> bool:
        """True when every task of the sweep produced a report."""
        return not self.failures

    def filter(self, **criteria) -> "SweepResult":
        """Keep reports whose attributes equal the given values, e.g.
        ``result.filter(memory="eprom", cache_bytes=1024)``."""
        kept = [
            report
            for report in self.reports
            if all(getattr(report, key) == value for key, value in criteria.items())
        ]
        return SweepResult(reports=tuple(kept), failures=self.failures)

    def best(self) -> ComparisonReport:
        """The configuration with the lowest relative execution time."""
        if not self.reports:
            raise ValueError("empty sweep")
        return min(self.reports, key=lambda report: report.relative_execution_time)

    def worst(self) -> ComparisonReport:
        """The configuration where the CCRP costs the most time."""
        if not self.reports:
            raise ValueError("empty sweep")
        return max(self.reports, key=lambda report: report.relative_execution_time)

    def rows(self) -> list[dict[str, object]]:
        """One flat dict per report, keyed by :data:`CSV_COLUMNS`."""
        return [
            {
                "program": report.program,
                "memory": report.memory,
                "cache_bytes": report.cache_bytes,
                "clb_entries": report.clb_entries,
                "data_cache_miss_rate": report.data_cache_miss_rate,
                "miss_rate": report.miss_rate,
                "relative_execution_time": report.relative_execution_time,
                "memory_traffic_ratio": report.memory_traffic_ratio,
                "compression_ratio": report.compression_ratio,
            }
            for report in self.reports
        ]

    def to_csv(self, path: str | Path) -> Path:
        """Write the sweep as CSV; returns the path written."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=CSV_COLUMNS)
            writer.writeheader()
            writer.writerows(self.rows())
        return path


def _grid(
    cache_sizes: Sequence[int],
    memories: Sequence[str],
    clb_entries: Sequence[int],
    data_miss_rates: Sequence[float],
    decoder: DecoderModel,
) -> list[SystemConfig]:
    """The cross product, in the fixed memory/cache/CLB/miss-rate order."""
    return [
        SystemConfig(
            cache_bytes=cache_bytes,
            memory=memory,
            clb_entries=entries,
            decoder=decoder,
            data_cache=DataCacheModel(miss_rate=miss_rate),
        )
        for memory in memories
        for cache_bytes in cache_sizes
        for entries in clb_entries
        for miss_rate in data_miss_rates
    ]


def _metrics_chunk(workload: str, configs: Sequence[SystemConfig]) -> list[tuple]:
    """Worker entry point: study via the shared caches, then the chunk.

    With a warm artifact cache the study pieces load from disk, so the
    per-worker setup cost is deserialisation, not re-simulation.

    Exceptions are captured *per grid point* — one bad configuration
    never discards the rest of the chunk — and travel back as
    ``("err", type, message, traceback)`` tuples (tracebacks do not
    pickle) for the parent to retry or report.
    """
    study = artifacts.get_study(workload)
    outcomes: list[tuple] = []
    for config in configs:
        try:
            outcomes.append(("ok", study.metrics(config)))
        except Exception as error:
            outcomes.append(
                ("err", type(error).__name__, str(error), traceback.format_exc())
            )
    return outcomes


def _retry_config(
    workload: str | Workload,
    config: SystemConfig,
    study: ProgramStudy | None,
    retries: int,
) -> tuple[ComparisonReport | None, BaseException | None, int]:
    """Re-attempt one failed grid point up to ``retries`` times.

    Returns ``(report, last_error, extra_attempts)``; the retry runs in
    the calling process so a crashed or wedged worker cannot take the
    retry down with it.
    """
    last_error: BaseException | None = None
    for attempt in range(retries):
        METRICS.count("sweep.retries")
        try:
            if study is None:
                study = (
                    artifacts.get_study(workload)
                    if isinstance(workload, str)
                    else ProgramStudy(workload)
                )
            return study.metrics(config), None, attempt + 1
        except Exception as error:
            last_error = error
    return None, last_error, retries


def sweep(
    workload: str | Workload,
    cache_sizes: Sequence[int] = (256, 512, 1024, 2048, 4096),
    memories: Sequence[str] = ("eprom", "burst_eprom", "sc_dram"),
    clb_entries: Sequence[int] = (16,),
    data_miss_rates: Sequence[float] = (1.0,),
    decoder: DecoderModel | None = None,
    study: ProgramStudy | None = None,
    jobs: int | None = None,
    strict: bool = False,
    retries: int = DEFAULT_RETRIES,
) -> SweepResult:
    """Run the full cross product of the given parameter axes.

    Args:
        workload: Suite name or :class:`Workload` instance.
        cache_sizes: Instruction-cache sizes to simulate.
        memories: Memory-model names.
        clb_entries: CLB capacities.
        data_miss_rates: Data-cache miss rates for the analytic model.
        decoder: Decoder model override (defaults to the paper's).
        study: Reuse an existing study (e.g. with a custom code).
        jobs: Fan grid points across this many worker processes.  Only
            suite workloads named by string parallelise (an explicit
            ``study`` cannot cross a process boundary); report order is
            identical to the serial run.
        strict: Re-raise the first unrecoverable task error (annotated
            with the workload name) instead of recording a
            :class:`FailureReport` and returning partial results.
        retries: Bounded re-attempts per failing task before giving up.
    """
    decoder = decoder or DecoderModel()
    configs = _grid(cache_sizes, memories, clb_entries, data_miss_rates, decoder)
    workload_name = workload if isinstance(workload, str) else workload.name
    failures: list[FailureReport] = []
    reports: list[ComparisonReport | None] = [None] * len(configs)

    def _settle(position: int, config: SystemConfig, error_type: str, message: str, tb: str) -> None:
        """Retry one failed grid point, then report or raise."""
        report, retry_error, extra = _retry_config(workload, config, study, retries)
        if report is not None:
            reports[position] = report
            return
        if retry_error is not None:
            error_type = type(retry_error).__name__
            message = str(retry_error)
            tb = "".join(
                traceback.format_exception(
                    type(retry_error), retry_error, retry_error.__traceback__
                )
            )
        context = f"workload {workload_name!r} at {_config_detail(config)}"
        if strict:
            source = retry_error if retry_error is not None else ReproError(message)
            raise _annotate(source, context) from retry_error
        METRICS.count("sweep.failures")
        failures.append(
            FailureReport(
                workload=workload_name,
                detail=_config_detail(config),
                error_type=error_type,
                message=message,
                attempts=1 + extra,
                traceback=tb,
            )
        )

    workers = (
        effective_jobs(jobs, len(configs))
        if study is None and isinstance(workload, str)
        else 1
    )
    if workers > 1:
        chunks = [configs[index::workers] for index in range(workers)]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_metrics_chunk, workload, chunk) for chunk in chunks]
            for stripe, future in enumerate(futures):
                try:
                    outcomes = future.result()
                except Exception as error:
                    # The whole chunk died (study build, pool breakage,
                    # unpicklable result...).  Completed chunks are kept;
                    # this one's grid points are re-attempted in-process.
                    outcomes = [
                        ("err", type(error).__name__, str(error), "")
                        for _ in chunks[stripe]
                    ]
                for offset, outcome in enumerate(outcomes):
                    position = stripe + offset * workers
                    if outcome[0] == "ok":
                        reports[position] = outcome[1]
                    else:
                        _settle(position, configs[position], *outcome[1:])
    else:
        local_study = study
        build_error: BaseException | None = None
        if local_study is None:
            try:
                local_study = (
                    artifacts.get_study(workload)
                    if isinstance(workload, str)
                    else ProgramStudy(workload)
                )
            except Exception as error:
                build_error = error
        if local_study is None:
            # The study itself cannot be built (unknown workload,
            # assembler failure...): every grid point fails at once.
            context = f"workload {workload_name!r} (study build)"
            if strict:
                raise _annotate(build_error, context) from build_error
            METRICS.count("sweep.failures")
            failures.append(
                FailureReport(
                    workload=workload_name,
                    detail=f"study build ({len(configs)} grid points)",
                    error_type=type(build_error).__name__,
                    message=str(build_error),
                    attempts=1,
                )
            )
        else:
            for position, config in enumerate(configs):
                try:
                    reports[position] = local_study.metrics(config)
                except Exception as error:
                    _settle(
                        position,
                        config,
                        type(error).__name__,
                        str(error),
                        traceback.format_exc(),
                    )
    return SweepResult(
        reports=tuple(report for report in reports if report is not None),
        failures=tuple(failures),
    )


def effective_jobs(jobs: int | None, tasks: int) -> int:
    """Worker processes actually worth spawning for ``tasks`` tasks.

    Clamps the requested count to the task count and to the machine's
    CPU count — extra workers past either bound only add process
    start-up and scheduling cost.  ``None`` and any result of 1 mean
    "run serial, no pool".
    """
    if jobs is None or tasks <= 0:
        return 1
    return max(1, min(jobs, tasks, os.cpu_count() or 1))


def _sweep_one(workload: str, axes: dict) -> tuple[tuple[ComparisonReport, ...], tuple[FailureReport, ...]]:
    """Worker entry point for :func:`sweep_many`."""
    result = sweep(workload, **axes)
    return result.reports, result.failures


def sweep_many(
    workloads: Iterable[str],
    jobs: int | None = None,
    strict: bool = False,
    retries: int = DEFAULT_RETRIES,
    **axes,
) -> SweepResult:
    """Sweep several workloads and concatenate the results.

    With ``jobs`` set, whole workloads fan across a process pool (each
    worker warms up from the shared on-disk artifact cache); results are
    concatenated in the given workload order, exactly as a serial run.

    One failing workload never takes the rest of the sweep down: its
    tasks are retried (bounded by ``retries``) and then recorded as
    :class:`FailureReport` entries next to every other workload's
    completed reports.  ``strict=True`` restores fail-fast — the first
    failure re-raises, annotated with the failing workload's name.
    """
    workloads = list(workloads)
    reports: list[ComparisonReport] = []
    failures: list[FailureReport] = []
    axes = dict(axes, strict=strict, retries=retries)
    workers = effective_jobs(jobs, len(workloads))
    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_sweep_one, workload, axes) for workload in workloads]
            for workload, future in zip(workloads, futures):
                try:
                    chunk_reports, chunk_failures = future.result()
                except Exception as error:
                    # Annotate with the failing workload and keep every
                    # already-completed workload's reports.
                    if strict:
                        raise _annotate(error, f"workload {workload!r}") from error
                    METRICS.count("sweep.retries")
                    try:
                        retried = sweep(workload, **axes)
                        chunk_reports, chunk_failures = retried.reports, retried.failures
                    except Exception as retry_error:
                        METRICS.count("sweep.failures")
                        chunk_reports = ()
                        chunk_failures = (
                            FailureReport(
                                workload=workload,
                                detail="whole-workload sweep",
                                error_type=type(retry_error).__name__,
                                message=str(retry_error),
                                attempts=2,
                            ),
                        )
                reports.extend(chunk_reports)
                failures.extend(chunk_failures)
    else:
        for workload in workloads:
            result = sweep(workload, **axes)
            reports.extend(result.reports)
            failures.extend(result.failures)
    return SweepResult(reports=tuple(reports), failures=tuple(failures))
