"""Structured design-space sweeps.

The paper's evaluation is a grid: programs x cache sizes x memory models
x CLB sizes x data-cache miss rates.  :func:`sweep` runs any sub-grid of
that space through one cached :class:`~repro.core.study.ProgramStudy` and
returns the reports in a form that is easy to filter, rank, and export —
the API equivalent of "this could be determined at development time".
"""

from __future__ import annotations

import csv
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.cache.datacache import DataCacheModel
from repro.ccrp.decoder import DecoderModel
from repro.core.config import SystemConfig
from repro.core.performance import ComparisonReport
from repro.core.study import ProgramStudy
from repro.workloads.suite import Workload

#: Columns written by :meth:`SweepResult.to_csv`, in order.
CSV_COLUMNS = (
    "program",
    "memory",
    "cache_bytes",
    "clb_entries",
    "data_cache_miss_rate",
    "miss_rate",
    "relative_execution_time",
    "memory_traffic_ratio",
    "compression_ratio",
)


@dataclass(frozen=True)
class SweepResult:
    """All comparison reports from one sweep."""

    reports: tuple[ComparisonReport, ...]

    def __len__(self) -> int:
        return len(self.reports)

    def filter(self, **criteria) -> "SweepResult":
        """Keep reports whose attributes equal the given values, e.g.
        ``result.filter(memory="eprom", cache_bytes=1024)``."""
        kept = [
            report
            for report in self.reports
            if all(getattr(report, key) == value for key, value in criteria.items())
        ]
        return SweepResult(reports=tuple(kept))

    def best(self) -> ComparisonReport:
        """The configuration with the lowest relative execution time."""
        if not self.reports:
            raise ValueError("empty sweep")
        return min(self.reports, key=lambda report: report.relative_execution_time)

    def worst(self) -> ComparisonReport:
        """The configuration where the CCRP costs the most time."""
        if not self.reports:
            raise ValueError("empty sweep")
        return max(self.reports, key=lambda report: report.relative_execution_time)

    def rows(self) -> list[dict[str, object]]:
        """One flat dict per report, keyed by :data:`CSV_COLUMNS`."""
        return [
            {
                "program": report.program,
                "memory": report.memory,
                "cache_bytes": report.cache_bytes,
                "clb_entries": report.clb_entries,
                "data_cache_miss_rate": report.data_cache_miss_rate,
                "miss_rate": report.miss_rate,
                "relative_execution_time": report.relative_execution_time,
                "memory_traffic_ratio": report.memory_traffic_ratio,
                "compression_ratio": report.compression_ratio,
            }
            for report in self.reports
        ]

    def to_csv(self, path: str | Path) -> Path:
        """Write the sweep as CSV; returns the path written."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=CSV_COLUMNS)
            writer.writeheader()
            writer.writerows(self.rows())
        return path


def sweep(
    workload: str | Workload,
    cache_sizes: Sequence[int] = (256, 512, 1024, 2048, 4096),
    memories: Sequence[str] = ("eprom", "burst_eprom", "sc_dram"),
    clb_entries: Sequence[int] = (16,),
    data_miss_rates: Sequence[float] = (1.0,),
    decoder: DecoderModel | None = None,
    study: ProgramStudy | None = None,
) -> SweepResult:
    """Run the full cross product of the given parameter axes.

    Args:
        workload: Suite name or :class:`Workload` instance.
        cache_sizes: Instruction-cache sizes to simulate.
        memories: Memory-model names.
        clb_entries: CLB capacities.
        data_miss_rates: Data-cache miss rates for the analytic model.
        decoder: Decoder model override (defaults to the paper's).
        study: Reuse an existing study (e.g. with a custom code).
    """
    study = study or ProgramStudy(workload)
    decoder = decoder or DecoderModel()
    reports = []
    for memory in memories:
        for cache_bytes in cache_sizes:
            for entries in clb_entries:
                for miss_rate in data_miss_rates:
                    config = SystemConfig(
                        cache_bytes=cache_bytes,
                        memory=memory,
                        clb_entries=entries,
                        decoder=decoder,
                        data_cache=DataCacheModel(miss_rate=miss_rate),
                    )
                    reports.append(study.metrics(config))
    return SweepResult(reports=tuple(reports))


def sweep_many(
    workloads: Iterable[str],
    **axes,
) -> SweepResult:
    """Sweep several workloads and concatenate the results."""
    reports: list[ComparisonReport] = []
    for workload in workloads:
        reports.extend(sweep(workload, **axes).reports)
    return SweepResult(reports=tuple(reports))
