"""Structured design-space sweeps.

The paper's evaluation is a grid: programs x cache sizes x memory models
x CLB sizes x data-cache miss rates.  :func:`sweep` runs any sub-grid of
that space through one cached :class:`~repro.core.study.ProgramStudy` and
returns the reports in a form that is easy to filter, rank, and export —
the API equivalent of "this could be determined at development time".

Sweeps degrade gracefully: each grid point is attempted independently
with a bounded retry, a failing point becomes a structured
:class:`FailureReport` on the returned :class:`SweepResult` (annotated
with the workload and grid coordinates), and every other point's report
survives.  Pass ``strict=True`` to restore fail-fast: the first
unrecoverable task re-raises, annotated with the failing workload.

Sweeps also **scale out** along two axes:

* ``jobs=N`` fans grid points (or whole workloads, in
  :func:`sweep_many`) across a process pool.  The parent builds the
  study *once* before spawning — the single-flight pre-warm — so cold
  workers inherit it (``fork`` start method) or load it from the disk
  artifact cache instead of N workers re-simulating the same study.
* ``shard=(i, n)`` runs only the i-th of ``n`` contiguous slices of the
  task list, so one sweep can split across machines.  Reassembling the
  shard results in partition order with :func:`merge_shards` (or shard
  files with :func:`merge_shard_files`) is byte-identical — reports
  *and* failures — to the unsharded run.
"""

from __future__ import annotations

import csv
import multiprocessing
import os
import pickle
import traceback
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.cache.datacache import DataCacheModel
from repro.ccrp.decoder import DecoderModel
from repro.core import artifacts
from repro.core.config import SystemConfig
from repro.core.metrics import METRICS
from repro.core.performance import ComparisonReport
from repro.core.study import ProgramStudy
from repro.errors import ConfigurationError, ReproError
from repro.workloads.suite import Workload

#: Columns written by :meth:`SweepResult.to_csv`, in order.
CSV_COLUMNS = (
    "program",
    "memory",
    "cache_bytes",
    "clb_entries",
    "data_cache_miss_rate",
    "miss_rate",
    "relative_execution_time",
    "memory_traffic_ratio",
    "compression_ratio",
)

#: Default bounded retry per failing grid point / workload.
DEFAULT_RETRIES = 1

#: Default sweep axes (also the grid shape :func:`sweep_many` shards over).
DEFAULT_CACHE_SIZES = (256, 512, 1024, 2048, 4096)
DEFAULT_MEMORIES = ("eprom", "burst_eprom", "sc_dram")
DEFAULT_CLB_ENTRIES = (16,)
DEFAULT_DATA_MISS_RATES = (1.0,)

#: Environment variable overriding the pool start method (fork/forkserver/spawn).
ENV_POOL_START = "CCRP_POOL_START"

#: Version tag of the shard files written by ``ccrp-sweep --emit-shard``.
SHARD_SCHEMA = "ccrp-sweep-shard/1"


@dataclass(frozen=True)
class FailureReport:
    """One task the sweep could not complete, with full attribution.

    Attributes:
        workload: Name of the workload whose task failed.
        detail: Which grid point (or stage) failed, human-readable.
        error_type: Exception class name.
        message: Exception message.
        attempts: Total attempts made (1 + retries).
        traceback: Formatted traceback of the last attempt, when one was
            captured (worker-side tracebacks travel back as strings).
    """

    workload: str
    detail: str
    error_type: str
    message: str
    attempts: int
    traceback: str = ""

    def render(self) -> str:
        """One-line summary for CLI output and logs."""
        return (
            f"{self.workload} [{self.detail}]: {self.error_type}: "
            f"{self.message} (after {self.attempts} attempt"
            f"{'s' if self.attempts != 1 else ''})"
        )


def _config_detail(config: SystemConfig) -> str:
    """Compact grid coordinates for failure attribution."""
    memory = getattr(config.memory, "name", config.memory)
    return (
        f"{memory}/{config.cache_bytes}B/clb{config.clb_entries}"
        f"/dmiss{config.data_cache.miss_rate:g}"
    )


def _annotate(error: BaseException, context: str) -> BaseException:
    """A copy of ``error`` whose message leads with ``context``.

    Keeps the original exception class when it can be rebuilt from a
    single message (every :class:`~repro.errors.ReproError` can), so
    ``except LATError`` style handling still works in strict mode; falls
    back to :class:`~repro.errors.ReproError` otherwise.
    """
    try:
        clone = type(error)(f"{context}: {error}")
    except Exception:
        clone = ReproError(f"{context}: {error}")
    return clone


@dataclass(frozen=True)
class SweepResult:
    """All comparison reports from one sweep, plus any captured failures."""

    reports: tuple[ComparisonReport, ...]
    failures: tuple[FailureReport, ...] = ()

    def __len__(self) -> int:
        return len(self.reports)

    @property
    def ok(self) -> bool:
        """True when every task of the sweep produced a report."""
        return not self.failures

    def filter(self, **criteria) -> "SweepResult":
        """Keep reports whose attributes equal the given values, e.g.
        ``result.filter(memory="eprom", cache_bytes=1024)``."""
        kept = [
            report
            for report in self.reports
            if all(getattr(report, key) == value for key, value in criteria.items())
        ]
        return SweepResult(reports=tuple(kept), failures=self.failures)

    def best(self) -> ComparisonReport:
        """The configuration with the lowest relative execution time."""
        if not self.reports:
            raise ValueError("empty sweep")
        return min(self.reports, key=lambda report: report.relative_execution_time)

    def worst(self) -> ComparisonReport:
        """The configuration where the CCRP costs the most time."""
        if not self.reports:
            raise ValueError("empty sweep")
        return max(self.reports, key=lambda report: report.relative_execution_time)

    def rows(self) -> list[dict[str, object]]:
        """One flat dict per report, keyed by :data:`CSV_COLUMNS`."""
        return [
            {
                "program": report.program,
                "memory": report.memory,
                "cache_bytes": report.cache_bytes,
                "clb_entries": report.clb_entries,
                "data_cache_miss_rate": report.data_cache_miss_rate,
                "miss_rate": report.miss_rate,
                "relative_execution_time": report.relative_execution_time,
                "memory_traffic_ratio": report.memory_traffic_ratio,
                "compression_ratio": report.compression_ratio,
            }
            for report in self.reports
        ]

    def to_csv(self, path: str | Path) -> Path:
        """Write the sweep as CSV; returns the path written."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=CSV_COLUMNS)
            writer.writeheader()
            writer.writerows(self.rows())
        return path


def _grid(
    cache_sizes: Sequence[int],
    memories: Sequence[str],
    clb_entries: Sequence[int],
    data_miss_rates: Sequence[float],
    decoder: DecoderModel,
) -> list[SystemConfig]:
    """The cross product, in the fixed memory/cache/CLB/miss-rate order."""
    return [
        SystemConfig(
            cache_bytes=cache_bytes,
            memory=memory,
            clb_entries=entries,
            decoder=decoder,
            data_cache=DataCacheModel(miss_rate=miss_rate),
        )
        for memory in memories
        for cache_bytes in cache_sizes
        for entries in clb_entries
        for miss_rate in data_miss_rates
    ]


# ----------------------------------------------------------------------
# Worker-pool plumbing
# ----------------------------------------------------------------------


def available_cpus() -> int:
    """CPUs actually available to this process.

    ``os.cpu_count()`` reports the machine, which overreports inside
    cgroup- or affinity-limited containers (a CI runner pinned to one
    core still "has" 64 CPUs).  The scheduler affinity mask is the
    honest bound where the platform exposes it.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:  # pragma: no cover - platform quirk
            pass
    count = os.cpu_count()
    return count if count else 1


def effective_jobs(jobs: int | None, tasks: int) -> int:
    """Worker processes actually worth spawning for ``tasks`` tasks.

    Clamps the requested count to the task count and to
    :func:`available_cpus` — extra workers past either bound only add
    process start-up and scheduling cost.  ``None`` and any result of 1
    mean "run serial, no pool".
    """
    if jobs is None or tasks <= 0:
        return 1
    return max(1, min(jobs, tasks, available_cpus()))


def _pool_context():
    """The warm-start multiprocessing context sweep pools run under.

    Prefers ``fork`` so workers inherit the parent's pre-warmed study
    LRU copy-on-write (no per-worker rebuild, not even a disk load),
    then ``forkserver``, then the platform default.  ``CCRP_POOL_START``
    overrides the choice by name.
    """
    methods = multiprocessing.get_all_start_methods()
    requested = os.environ.get(ENV_POOL_START, "").strip()
    if requested:
        if requested not in methods:
            raise ConfigurationError(
                f"{ENV_POOL_START}={requested!r} is not a start method on "
                f"this platform; choose from {methods}"
            )
        return multiprocessing.get_context(requested)
    for method in ("fork", "forkserver"):
        if method in methods:
            return multiprocessing.get_context(method)
    return multiprocessing.get_context()  # pragma: no cover - non-POSIX


def _metrics_chunk(workload: str, configs: Sequence[SystemConfig]) -> tuple:
    """Worker entry point: study via the shared caches, then the chunk.

    The parent pre-warmed the study before spawning, so this either
    inherits it outright (``fork``) or deserialises the pieces from the
    disk artifact cache — never re-simulates.

    Exceptions are captured *per grid point* — one bad configuration
    never discards the rest of the chunk — and travel back as
    ``("err", type, message, traceback)`` tuples (tracebacks do not
    pickle) for the parent to retry or report.  Returns
    ``(outcomes, metrics_snapshot)`` so the parent can merge this
    chunk's cache counters into its own registry.
    """
    METRICS.reset()
    study = artifacts.get_study(workload)
    outcomes: list[tuple] = []
    for config in configs:
        try:
            outcomes.append(("ok", study.metrics(config)))
        except Exception as error:
            outcomes.append(
                ("err", type(error).__name__, str(error), traceback.format_exc())
            )
    return outcomes, METRICS.snapshot()


def _retry_config(
    workload: str | Workload,
    config: SystemConfig,
    study: ProgramStudy | None,
    retries: int,
) -> tuple[ComparisonReport | None, BaseException | None, int]:
    """Re-attempt one failed grid point up to ``retries`` times.

    Returns ``(report, last_error, extra_attempts)``; the retry runs in
    the calling process so a crashed or wedged worker cannot take the
    retry down with it.
    """
    last_error: BaseException | None = None
    for attempt in range(retries):
        METRICS.count("sweep.retries")
        try:
            if study is None:
                study = (
                    artifacts.get_study(workload)
                    if isinstance(workload, str)
                    else ProgramStudy(workload)
                )
            return study.metrics(config), None, attempt + 1
        except Exception as error:
            last_error = error
    return None, last_error, retries


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------


def shard_span(total: int, shard: Sequence[int]) -> tuple[int, int]:
    """The contiguous ``[start, stop)`` slice of shard ``(index, count)``.

    Tasks are split as evenly as possible (sizes differ by at most one)
    and the ``count`` slices cover ``range(total)`` exactly, so running
    every shard and concatenating in index order reproduces the
    unsharded task list.
    """
    try:
        index, count = shard
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"shard must be an (index, count) pair, got {shard!r}"
        ) from None
    if count < 1:
        raise ConfigurationError(f"shard count must be at least 1, got {count}")
    if not 0 <= index < count:
        raise ConfigurationError(
            f"shard index must be in [0, {count}), got {index}"
        )
    return (total * index) // count, (total * (index + 1)) // count


def merge_shards(shards: Iterable[SweepResult]) -> SweepResult:
    """Reassemble shard results, given in partition order (shard 0 first).

    Because shards are contiguous slices of the task list and a sweep
    emits reports and failures in task order, plain concatenation is
    byte-identical — reports *and* :class:`FailureReport` entries — to
    the unsharded run.  (The one exception: a workload whose *study*
    cannot be built emits one summarising failure per shard that covers
    it, where the unsharded run emits a single one.)
    """
    reports: list[ComparisonReport] = []
    failures: list[FailureReport] = []
    for shard in shards:
        reports.extend(shard.reports)
        failures.extend(shard.failures)
    return SweepResult(reports=tuple(reports), failures=tuple(failures))


def write_shard_file(
    path: str | Path, result: SweepResult, shard: Sequence[int], spec: dict
) -> Path:
    """Persist one shard's result for a later :func:`merge_shard_files`.

    ``spec`` is the full sweep specification (workloads and axes); the
    merge refuses to combine shards whose specs differ, so a shard of
    the wrong sweep can never silently corrupt a merged result.
    """
    index, count = shard
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": SHARD_SCHEMA,
        "spec": dict(spec),
        "shard": (int(index), int(count)),
        "result": result,
    }
    with path.open("wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    return path


def read_shard_file(path: str | Path) -> dict:
    """Load and validate one shard file written by :func:`write_shard_file`."""
    path = Path(path)
    try:
        with path.open("rb") as handle:
            payload = pickle.load(handle)
    except FileNotFoundError:
        raise ConfigurationError(f"shard file not found: {path}") from None
    except Exception as error:
        raise ConfigurationError(f"unreadable shard file {path}: {error}") from None
    if not isinstance(payload, dict) or payload.get("schema") != SHARD_SCHEMA:
        raise ConfigurationError(
            f"{path} is not a {SHARD_SCHEMA} shard file"
        )
    return payload


def merge_shard_files(paths: Sequence[str | Path]) -> SweepResult:
    """Merge shard files into one result, validating the partition.

    Requires every shard to come from the same sweep spec and the shard
    indices to form the complete partition ``0..count-1``; shards may be
    given in any order (they are sorted by index before merging).
    """
    if not paths:
        raise ConfigurationError("no shard files to merge")
    payloads = [read_shard_file(path) for path in paths]
    spec = payloads[0]["spec"]
    count = payloads[0]["shard"][1]
    for path, payload in zip(paths, payloads):
        if payload["spec"] != spec:
            raise ConfigurationError(
                f"shard {path} comes from a different sweep "
                f"(spec {payload['spec']!r} != {spec!r})"
            )
        if payload["shard"][1] != count:
            raise ConfigurationError(
                f"shard {path} uses a different shard count "
                f"({payload['shard'][1]} != {count})"
            )
    indices = sorted(payload["shard"][0] for payload in payloads)
    if indices != list(range(count)):
        raise ConfigurationError(
            f"incomplete shard partition: have indices {indices}, "
            f"need exactly 0..{count - 1}"
        )
    ordered = sorted(payloads, key=lambda payload: payload["shard"][0])
    return merge_shards(payload["result"] for payload in ordered)


# ----------------------------------------------------------------------
# The sweeps
# ----------------------------------------------------------------------


def sweep(
    workload: str | Workload,
    cache_sizes: Sequence[int] = DEFAULT_CACHE_SIZES,
    memories: Sequence[str] = DEFAULT_MEMORIES,
    clb_entries: Sequence[int] = DEFAULT_CLB_ENTRIES,
    data_miss_rates: Sequence[float] = DEFAULT_DATA_MISS_RATES,
    decoder: DecoderModel | None = None,
    study: ProgramStudy | None = None,
    jobs: int | None = None,
    strict: bool = False,
    retries: int = DEFAULT_RETRIES,
    shard: Sequence[int] | None = None,
    _span: tuple[int, int] | None = None,
) -> SweepResult:
    """Run the full cross product of the given parameter axes.

    Args:
        workload: Suite name or :class:`Workload` instance.
        cache_sizes: Instruction-cache sizes to simulate.
        memories: Memory-model names.
        clb_entries: CLB capacities.
        data_miss_rates: Data-cache miss rates for the analytic model.
        decoder: Decoder model override (defaults to the paper's).
        study: Reuse an existing study (e.g. with a custom code).
        jobs: Fan grid points across this many worker processes.  Only
            suite workloads named by string parallelise (an explicit
            ``study`` cannot cross a process boundary); report order is
            identical to the serial run.  The parent builds the study
            once *before* spawning, so cold workers never duplicate it.
        strict: Re-raise the first unrecoverable task error (annotated
            with the workload name) instead of recording a
            :class:`FailureReport` and returning partial results.
        retries: Bounded re-attempts per failing task before giving up.
        shard: ``(index, count)`` — run only this contiguous slice of
            the grid (see :func:`shard_span`); :func:`merge_shards` over
            all ``count`` shards reproduces the unsharded result.
        _span: Internal ``[start, stop)`` grid slice used by
            :func:`sweep_many` sharding; mutually exclusive with
            ``shard``.
    """
    decoder = decoder or DecoderModel()
    configs = _grid(cache_sizes, memories, clb_entries, data_miss_rates, decoder)
    if shard is not None and _span is not None:
        raise ConfigurationError("pass shard or _span, not both")
    if shard is not None:
        start, stop = shard_span(len(configs), shard)
        configs = configs[start:stop]
    elif _span is not None:
        start, stop = _span
        configs = configs[start:stop]
    workload_name = workload if isinstance(workload, str) else workload.name
    failures: list[tuple[int, FailureReport]] = []
    reports: list[ComparisonReport | None] = [None] * len(configs)

    # --- single-flight study build ------------------------------------
    # Build (or load) the study once in the parent before any worker
    # exists.  Forked workers inherit it copy-on-write; other start
    # methods find the pieces in the disk artifact cache.  This is what
    # keeps a cold parallel sweep from simulating the trace N times.
    local_study = study
    build_error: BaseException | None = None
    if local_study is None:
        try:
            local_study = (
                artifacts.get_study(workload)
                if isinstance(workload, str)
                else ProgramStudy(workload)
            )
        except Exception as error:
            build_error = error
    if local_study is None:
        # The study itself cannot be built (unknown workload, assembler
        # failure...): every grid point fails at once.
        context = f"workload {workload_name!r} (study build)"
        if strict:
            raise _annotate(build_error, context) from build_error
        METRICS.count("sweep.failures")
        return SweepResult(
            reports=(),
            failures=(
                FailureReport(
                    workload=workload_name,
                    detail=f"study build ({len(configs)} grid points)",
                    error_type=type(build_error).__name__,
                    message=str(build_error),
                    attempts=1,
                ),
            ),
        )

    def _settle(position: int, config: SystemConfig, error_type: str, message: str, tb: str) -> None:
        """Retry one failed grid point, then report or raise."""
        report, retry_error, extra = _retry_config(
            workload, config, local_study, retries
        )
        if report is not None:
            reports[position] = report
            return
        if retry_error is not None:
            error_type = type(retry_error).__name__
            message = str(retry_error)
            tb = "".join(
                traceback.format_exception(
                    type(retry_error), retry_error, retry_error.__traceback__
                )
            )
        context = f"workload {workload_name!r} at {_config_detail(config)}"
        if strict:
            source = retry_error if retry_error is not None else ReproError(message)
            raise _annotate(source, context) from retry_error
        METRICS.count("sweep.failures")
        failures.append(
            (
                position,
                FailureReport(
                    workload=workload_name,
                    detail=_config_detail(config),
                    error_type=error_type,
                    message=message,
                    attempts=1 + extra,
                    traceback=tb,
                ),
            )
        )

    workers = (
        effective_jobs(jobs, len(configs))
        if study is None and isinstance(workload, str)
        else 1
    )
    if jobs is not None:
        METRICS.gauge("sweep.workers", workers)
    if workers > 1:
        chunks = [configs[index::workers] for index in range(workers)]
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_pool_context()
        ) as pool:
            futures = [pool.submit(_metrics_chunk, workload, chunk) for chunk in chunks]
            for stripe, future in enumerate(futures):
                try:
                    outcomes, worker_metrics = future.result()
                    METRICS.merge(worker_metrics)
                except Exception as error:
                    # The whole chunk died (worker crash, pool breakage,
                    # unpicklable result...).  Completed chunks are kept;
                    # this one's grid points are re-attempted in-process.
                    outcomes = [
                        ("err", type(error).__name__, str(error), "")
                        for _ in chunks[stripe]
                    ]
                for offset, outcome in enumerate(outcomes):
                    position = stripe + offset * workers
                    if outcome[0] == "ok":
                        reports[position] = outcome[1]
                    else:
                        _settle(position, configs[position], *outcome[1:])
    else:
        for position, config in enumerate(configs):
            try:
                reports[position] = local_study.metrics(config)
            except Exception as error:
                _settle(
                    position,
                    config,
                    type(error).__name__,
                    str(error),
                    traceback.format_exc(),
                )
    # Failures surface in task order regardless of which worker (or
    # stripe) hit them, so serial, parallel, and merged-shard runs all
    # produce identical SweepResults.
    failures.sort(key=lambda entry: entry[0])
    return SweepResult(
        reports=tuple(report for report in reports if report is not None),
        failures=tuple(report for _, report in failures),
    )


def _grid_size(axes: dict) -> int:
    """Grid points per workload for :func:`sweep_many`'s task arithmetic."""
    return (
        len(axes.get("cache_sizes", DEFAULT_CACHE_SIZES))
        * len(axes.get("memories", DEFAULT_MEMORIES))
        * len(axes.get("clb_entries", DEFAULT_CLB_ENTRIES))
        * len(axes.get("data_miss_rates", DEFAULT_DATA_MISS_RATES))
    )


def _sweep_one(workload: str, axes: dict) -> tuple[tuple[ComparisonReport, ...], tuple[FailureReport, ...]]:
    """Worker entry point for :func:`sweep_many`."""
    result = sweep(workload, **axes)
    return result.reports, result.failures


def _recover_workload(
    workload: str, axes: dict, retries: int, error: BaseException, strict: bool
) -> tuple[tuple[ComparisonReport, ...], tuple[FailureReport, ...]]:
    """Parent-side recovery after a pooled whole-workload task died.

    Re-runs the workload's sweep in this process up to ``retries`` times
    (a crashed worker cannot take the retry down with it) and returns
    its reports/failures; if every attempt fails, one
    :class:`FailureReport` records the *true* total attempt count —
    the first pooled attempt plus each re-run.
    """
    if strict:
        raise _annotate(error, f"workload {workload!r}") from error
    last_error = error
    attempts = 1
    for _ in range(retries):
        METRICS.count("sweep.retries")
        attempts += 1
        try:
            retried = sweep(workload, **axes)
        except Exception as retry_error:
            last_error = retry_error
            continue
        return retried.reports, retried.failures
    METRICS.count("sweep.failures")
    return (), (
        FailureReport(
            workload=workload,
            detail="whole-workload sweep",
            error_type=type(last_error).__name__,
            message=str(last_error),
            attempts=attempts,
        ),
    )


def sweep_many(
    workloads: Iterable[str],
    jobs: int | None = None,
    strict: bool = False,
    retries: int = DEFAULT_RETRIES,
    shard: Sequence[int] | None = None,
    **axes,
) -> SweepResult:
    """Sweep several workloads and concatenate the results.

    With ``jobs`` set, whole workloads fan across a process pool (each
    worker warms up from the shared on-disk artifact cache); results are
    concatenated in the given workload order, exactly as a serial run.

    With ``shard=(i, n)`` set, only the i-th contiguous slice of the
    flattened ``workloads x grid`` task list runs — the unit of
    cross-machine splitting — and :func:`merge_shards` over all ``n``
    shard results reproduces the unsharded run byte-for-byte.

    One failing workload never takes the rest of the sweep down: its
    tasks are retried (bounded by ``retries``) and then recorded as
    :class:`FailureReport` entries next to every other workload's
    completed reports.  ``strict=True`` restores fail-fast — the first
    failure re-raises, annotated with the failing workload's name.
    """
    workloads = list(workloads)
    axes = dict(axes, strict=strict, retries=retries)
    tasks: list[tuple[str, dict]] = []
    if shard is not None:
        grid = _grid_size(axes)
        start, stop = shard_span(len(workloads) * grid, shard)
        for index, workload in enumerate(workloads):
            low, high = index * grid, (index + 1) * grid
            begin, end = max(start, low), min(stop, high)
            if begin < end:
                tasks.append((workload, dict(axes, _span=(begin - low, end - low))))
    else:
        tasks = [(workload, axes) for workload in workloads]
    reports: list[ComparisonReport] = []
    failures: list[FailureReport] = []
    workers = effective_jobs(jobs, len(tasks))
    if jobs is not None:
        METRICS.gauge("sweep.workers", workers)
    if workers > 1:
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_pool_context()
        ) as pool:
            futures = [
                pool.submit(_sweep_one, workload, task_axes)
                for workload, task_axes in tasks
            ]
            for (workload, task_axes), future in zip(tasks, futures):
                try:
                    chunk_reports, chunk_failures = future.result()
                except Exception as error:
                    chunk_reports, chunk_failures = _recover_workload(
                        workload, task_axes, retries, error, strict
                    )
                reports.extend(chunk_reports)
                failures.extend(chunk_failures)
    else:
        for workload, task_axes in tasks:
            result = sweep(workload, **task_axes)
            reports.extend(result.reports)
            failures.extend(result.failures)
    return SweepResult(reports=tuple(reports), failures=tuple(failures))
