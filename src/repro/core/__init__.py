"""The CCRP trace-driven system simulator (the paper's Section 4 tool).

This package combines every substrate into the experiment the paper runs:
execute a workload, feed its instruction trace through a direct-mapped
cache, and price the misses under two machines — a standard RISC system
and a CCRP with a code-expanding cache — across the three embedded memory
models.

High-level use::

    from repro import core

    report = core.compare("espresso", core.SystemConfig(cache_bytes=1024,
                                                        memory="burst_eprom"))
    print(report.relative_execution_time, report.miss_rate)
"""

from repro.core.artifacts import ArtifactCache, get_cache, get_study, set_cache_enabled
from repro.core.config import SystemConfig
from repro.core.metrics import METRICS, MetricsRegistry
from repro.core.performance import ComparisonReport, SystemMetrics
from repro.core.standard import standard_code
from repro.core.study import ProgramStudy, compare
from repro.core.sweep import FailureReport, SweepResult, sweep, sweep_many

__all__ = [
    "ArtifactCache",
    "ComparisonReport",
    "FailureReport",
    "METRICS",
    "MetricsRegistry",
    "ProgramStudy",
    "SweepResult",
    "SystemConfig",
    "SystemMetrics",
    "compare",
    "get_cache",
    "get_study",
    "set_cache_enabled",
    "standard_code",
    "sweep",
    "sweep_many",
]
