"""The standard Preselected Bounded Huffman code.

The paper builds one 16-bit-bounded Huffman code from the byte histogram
of all ten Figure 5 programs and hard-wires it into the decoder; the same
code is then used for *every* experiment, including programs outside the
training set (nasa1, tomcatv, fpppp, …).  ``standard_code()`` is that
code for this library's corpus.
"""

from __future__ import annotations

from functools import lru_cache

from repro.compression.huffman import HuffmanCode
from repro.compression.preselected import build_preselected_code
from repro.workloads.suite import load_figure5_corpus


@lru_cache(maxsize=1)
def standard_code(max_length: int = 16) -> HuffmanCode:
    """The library's hard-wired preselected bounded Huffman code."""
    return build_preselected_code(load_figure5_corpus().values(), max_length=max_length)
