"""Lightweight observability for the experiment harness.

The harness promise is "speedups are measured, not asserted": every
expensive stage (trace execution, compression, cache simulation, CLB
simulation, whole experiments) runs inside a named :meth:`MetricsRegistry.stage`
block, and the artifact cache counts its hits, misses, and stores.  The
accumulated numbers serialise to a stable JSON schema (``ccrp-metrics/2``)
via ``ccrp-experiments --metrics out.json``:

::

    {
      "schema": "ccrp-metrics/2",
      "stages":   {"study.trace": {"calls": 8, "wall_seconds": ..., "cpu_seconds": ...}},
      "counters": {"artifacts.hit": 12, "artifacts.miss": 4, "artifacts.build": 4},
      "gauges":   {"sweep.workers": 4},
      "observations": {"latency.compress": {"count": 9, "mean": ..., "p50": ..., "p99": ...}}
    }

Worker processes report their own snapshots, which the parent folds in
with :meth:`MetricsRegistry.merge`, so parallel runs are observable too.

Every public method takes the registry lock and operates on consistent
copies: :meth:`MetricsRegistry.snapshot` and :meth:`MetricsRegistry.merge`
are safe to call while stage timers, counters, and observations are
being recorded from other threads — the compression service samples its
live registry from the asyncio thread while worker snapshots merge in
from chunk completions.

Schema history: ``/1`` had stages/counters/gauges only; ``/2`` adds the
``observations`` section (value distributions with percentiles).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

#: Version tag written into every metrics dump.
SCHEMA = "ccrp-metrics/2"

#: Newest samples kept per observation series (FIFO window).
MAX_SAMPLES = 4096


def _percentile(ordered: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted, non-empty list."""
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class StageStats:
    """Accumulated timings for one named stage."""

    calls: int = 0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0


class MetricsRegistry:
    """Thread-safe collection of stage timers and event counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: dict[str, StageStats] = {}
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._samples: dict[str, deque[float]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    @contextmanager
    def stage(self, name: str):
        """Time a block of work under ``name`` (wall clock and CPU)."""
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            yield
        finally:
            wall = time.perf_counter() - wall_start
            cpu = time.process_time() - cpu_start
            with self._lock:
                stats = self._stages.setdefault(name, StageStats())
                stats.calls += 1
                stats.wall_seconds += wall
                stats.cpu_seconds += cpu

    def count(self, name: str, amount: int = 1) -> None:
        """Increment the counter ``name`` by ``amount``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Record a point-in-time value (last write wins, merges by max).

        Unlike counters, gauges answer "what was it" rather than "how
        many" — e.g. ``sweep.workers`` is the resolved process-pool
        width of the last parallel sweep, not a running total.
        """
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample of a value distribution (e.g. a latency).

        The registry keeps the newest :data:`MAX_SAMPLES` samples per
        series; :meth:`snapshot` summarises each series with count,
        mean, min/max, and nearest-rank p50/p99.
        """
        with self._lock:
            series = self._samples.get(name)
            if series is None:
                series = self._samples[name] = deque(maxlen=MAX_SAMPLES)
            series.append(float(value))

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_value(self, name: str, default: float = 0) -> float:
        """Current value of gauge ``name`` (``default`` if never set)."""
        with self._lock:
            return self._gauges.get(name, default)

    def stage_stats(self, name: str) -> StageStats:
        """Accumulated stats for stage ``name`` (zeros if never entered)."""
        with self._lock:
            stats = self._stages.get(name)
            return StageStats() if stats is None else StageStats(
                calls=stats.calls,
                wall_seconds=stats.wall_seconds,
                cpu_seconds=stats.cpu_seconds,
            )

    def snapshot(self) -> dict:
        """JSON-able copy of everything recorded so far.

        The copy is taken atomically under the registry lock, so a
        snapshot read from one thread while another thread is recording
        is internally consistent; the (possibly slow) percentile math
        then runs on the copies, outside the lock.
        """
        with self._lock:
            stages = {
                name: {
                    "calls": stats.calls,
                    "wall_seconds": stats.wall_seconds,
                    "cpu_seconds": stats.cpu_seconds,
                }
                for name, stats in sorted(self._stages.items())
            }
            counters = dict(sorted(self._counters.items()))
            gauges = dict(sorted(self._gauges.items()))
            samples = {name: list(series) for name, series in self._samples.items()}
        observations = {}
        for name in sorted(samples):
            ordered = sorted(samples[name])
            observations[name] = {
                "count": len(ordered),
                "mean": sum(ordered) / len(ordered),
                "min": ordered[0],
                "max": ordered[-1],
                "p50": _percentile(ordered, 0.50),
                "p99": _percentile(ordered, 0.99),
            }
        return {
            "stages": stages,
            "counters": counters,
            "gauges": gauges,
            "observations": observations,
        }

    # ------------------------------------------------------------------
    # Combining and persisting
    # ------------------------------------------------------------------

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Used by the parallel runner to aggregate worker-process metrics.
        Stages and counters add; gauges keep the maximum.  Observation
        series are *node-local*: a snapshot carries their summaries, not
        their samples, and percentiles cannot be combined from
        summaries, so ``merge`` leaves the local series untouched rather
        than fabricate a distribution.
        """
        with self._lock:
            for name, data in snapshot.get("stages", {}).items():
                stats = self._stages.setdefault(name, StageStats())
                stats.calls += data.get("calls", 0)
                stats.wall_seconds += data.get("wall_seconds", 0.0)
                stats.cpu_seconds += data.get("cpu_seconds", 0.0)
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                # Counters add; gauges keep the most pessimistic (largest)
                # observation, so a parent merging N workers reports the
                # widest pool any of them resolved.
                current = self._gauges.get(name)
                self._gauges[name] = value if current is None else max(current, value)

    def reset(self) -> None:
        """Drop everything recorded (workers call this per task)."""
        with self._lock:
            self._stages.clear()
            self._counters.clear()
            self._gauges.clear()
            self._samples.clear()

    def write_json(self, path: str | Path, extra: dict | None = None) -> Path:
        """Write ``{"schema": ..., **extra, **snapshot}`` to ``path``."""
        path = Path(path)
        payload: dict = {"schema": SCHEMA}
        if extra:
            payload.update(extra)
        payload.update(self.snapshot())
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path


#: The process-wide registry every harness component records into.
METRICS = MetricsRegistry()
