"""Embedded instruction-memory timing models (paper Section 4.2.1)."""

from repro.memsys.models import (
    BURST_EPROM,
    EPROM,
    MEMORY_MODELS,
    SC_DRAM,
    MemoryModel,
    get_memory_model,
)

__all__ = [
    "BURST_EPROM",
    "EPROM",
    "MEMORY_MODELS",
    "MemoryModel",
    "SC_DRAM",
    "get_memory_model",
]
