"""Instruction-memory timing models.

The paper models three memory implementations against a 40 ns processor
cycle (Section 4.2.1):

* **EPROM** — standard ~100 ns EPROMs; every word read costs 3 cycles.
* **Burst EPROM** — 3 cycles for the first word of a burst, 1 for each
  subsequent word.
* **Static-Column DRAM** — 4 cycles for the first word, 1 per subsequent
  word, plus a 2-cycle precharge after each burst during which the memory
  cannot be accessed (70 ns 4 Mbit parts).

Burst page-boundary crossings are not penalised, matching the paper's
stated simplification.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Set to a truthy value to force the scalar golden-reference memory-system
#: paths (stateful CLB walk, per-block refill loops, per-line decode)
#: instead of the vectorized kernels.  CI uses it to assert both paths
#: render byte-identical experiment outputs.
MEMSYS_REFERENCE_ENV = "CCRP_MEMSYS_REFERENCE"


def memsys_reference_mode() -> bool:
    """True when the environment forces the scalar reference paths."""
    return os.environ.get(MEMSYS_REFERENCE_ENV, "").strip().lower() in {
        "1",
        "true",
        "yes",
        "on",
    }


@dataclass(frozen=True)
class MemoryModel:
    """Cycle-level timing of one instruction-memory implementation.

    A "word" here is one bus transfer (beat).  The paper's system has a
    single 32-bit bus (``bus_bytes = 4``); the Section 3.4/5 discussion of
    64- and 128-bit embedded buses is modelled by widening ``bus_bytes``
    while keeping the per-beat latencies — see
    :meth:`with_bus_bytes` and the ``bus-width`` experiment.

    Attributes:
        name: Identifier used in configs and reports.
        first_word_cycles: Latency of the first beat of a burst.
        next_word_cycles: Latency of each subsequent beat in the burst.
        post_burst_cycles: Dead cycles after a burst completes (DRAM
            precharge); charged once per burst.
        bus_bytes: Bytes delivered per beat (bus width).
    """

    name: str
    first_word_cycles: int
    next_word_cycles: int
    post_burst_cycles: int = 0
    bus_bytes: int = 4

    def __post_init__(self) -> None:
        if self.first_word_cycles < 1 or self.next_word_cycles < 1:
            raise ConfigurationError("word latencies must be at least one cycle")
        if self.post_burst_cycles < 0:
            raise ConfigurationError("post-burst penalty cannot be negative")
        if self.bus_bytes < 1 or self.bus_bytes & (self.bus_bytes - 1):
            raise ConfigurationError(f"bus width {self.bus_bytes} is not a power of two")

    def word_arrival_times(self, words: int) -> list[int]:
        """Cycle at which each of ``words`` sequential beats is available."""
        if words < 1:
            raise ConfigurationError(f"a burst needs at least one word, got {words}")
        times = [self.first_word_cycles]
        for _ in range(words - 1):
            times.append(times[-1] + self.next_word_cycles)
        return times

    def burst_read_cycles(self, words: int) -> int:
        """Total bus occupancy of a ``words``-beat burst, incl. precharge."""
        return self.word_arrival_times(words)[-1] + self.post_burst_cycles

    def beats_for_bytes(self, size: int) -> int:
        """Bus beats needed to transfer ``size`` bytes."""
        if size < 1:
            raise ConfigurationError(f"transfer size must be positive, got {size}")
        return -(-size // self.bus_bytes)

    def bytes_read_cycles(self, size: int) -> int:
        """Burst time for ``size`` bytes at this bus width."""
        return self.burst_read_cycles(self.beats_for_bytes(size))

    def byte_arrival_times(self, size: int) -> list[int]:
        """Arrival cycle of each *byte* of a ``size``-byte burst."""
        beats = self.word_arrival_times(self.beats_for_bytes(size))
        return [beats[index // self.bus_bytes] for index in range(size)]

    def with_bus_bytes(self, bus_bytes: int) -> "MemoryModel":
        """The same memory array behind a wider (or narrower) bus."""
        return MemoryModel(
            name=f"{self.name}x{bus_bytes * 8}",
            first_word_cycles=self.first_word_cycles,
            next_word_cycles=self.next_word_cycles,
            post_burst_cycles=self.post_burst_cycles,
            bus_bytes=bus_bytes,
        )


#: Standard EPROM: non-burst, 3 cycles per word.
EPROM = MemoryModel(name="eprom", first_word_cycles=3, next_word_cycles=3)

#: Burst-mode EPROM: 3-1-1-1-…
BURST_EPROM = MemoryModel(name="burst_eprom", first_word_cycles=3, next_word_cycles=1)

#: Static-column DRAM: 4-1-1-1-… plus 2-cycle precharge per burst.
SC_DRAM = MemoryModel(
    name="sc_dram", first_word_cycles=4, next_word_cycles=1, post_burst_cycles=2
)

#: All models, by name.
MEMORY_MODELS: dict[str, MemoryModel] = {
    model.name: model for model in (EPROM, BURST_EPROM, SC_DRAM)
}


def get_memory_model(name: str | MemoryModel) -> MemoryModel:
    """Resolve a model by name (pass-through for model instances)."""
    if isinstance(name, MemoryModel):
        return name
    try:
        return MEMORY_MODELS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown memory model {name!r}; choose from {sorted(MEMORY_MODELS)}"
        ) from None
